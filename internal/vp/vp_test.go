package vp

import (
	"testing"

	"rvcte/internal/guest"
	"rvcte/internal/smt"
	"rvcte/internal/sysc"
)

const ramBase = 0x80000000
const ramSize = 4 << 20

// runGuest builds a guest program and executes it on the concrete VP.
func runGuest(t *testing.T, p guest.Program) *CPU {
	t.Helper()
	elf, err := guest.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	cpu := New(Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 100_000_000,
		StackTop: ramBase + ramSize - 16384})
	AttachStandardPeripherals(cpu)
	if err := cpu.LoadELF(elf); err != nil {
		t.Fatal(err)
	}
	cpu.Run(0)
	return cpu
}

func TestVPHelloWorld(t *testing.T) {
	cpu := runGuest(t, guest.Program{
		Name: "hello",
		Sources: []guest.Source{guest.C("main.c", `
int main(void) { puts_("vp says hi"); return 5; }`)},
	})
	if cpu.Err != nil {
		t.Fatalf("vp error: %v", cpu.Err)
	}
	if cpu.ExitCode != 5 || string(cpu.Output) != "vp says hi\n" {
		t.Errorf("exit=%d output=%q", cpu.ExitCode, cpu.Output)
	}
}

func TestVPBenchmarksRun(t *testing.T) {
	for _, name := range []string{"qsort", "sha256", "dhrystone"} {
		t.Run(name, func(t *testing.T) {
			p, ok := guest.BenchProgram(name)
			if !ok {
				t.Fatal("unknown bench")
			}
			p.Defines = map[string]string{"QSORT_N": "300", "SHA_ITERS": "2", "SHA_MSG_LEN": "128", "DHRY_RUNS": "200"}
			cpu := runGuest(t, p)
			if cpu.Err != nil {
				t.Fatalf("%s on VP: %v", name, cpu.Err)
			}
			if !cpu.Exited {
				t.Errorf("%s did not exit", name)
			}
		})
	}
}

// TestVPMatchesCTEOnConcreteRuns: the concrete VP and the concolic ISS
// must produce identical results (exit code, output, instruction count)
// on deterministic programs — they implement the same ISA.
func TestVPMatchesCTEOnConcreteRuns(t *testing.T) {
	progs := []guest.Program{
		func() guest.Program {
			p, _ := guest.BenchProgram("qsort")
			p.Defines = map[string]string{"QSORT_N": "200"}
			return p
		}(),
		func() guest.Program {
			p, _ := guest.BenchProgram("dhrystone")
			p.Defines = map[string]string{"DHRY_RUNS": "50"}
			return p
		}(),
		{Name: "mix", Sources: []guest.Source{guest.C("m.c", `
int main(void) {
    unsigned int acc = 7;
    int i;
    for (i = 0; i < 1000; i++) {
        acc = acc * 31 + (unsigned int)i;
        acc ^= acc >> 5;
        if (acc & 1) acc += 3; else acc -= (unsigned int)i;
    }
    print_u32(acc);
    return (int)(acc & 0x3f);
}`)}},
	}
	for _, p := range progs {
		t.Run(p.Name, func(t *testing.T) {
			// Concrete VP run.
			cpu := runGuest(t, p)
			if cpu.Err != nil {
				t.Fatalf("vp: %v", cpu.Err)
			}
			// Concolic ISS run on the same program.
			b := smt.NewBuilder()
			core, _, err := guest.NewCore(b, p)
			if err != nil {
				t.Fatal(err)
			}
			core.Run(0)
			if core.Err != nil {
				t.Fatalf("cte: %v", core.Err)
			}
			if cpu.ExitCode != core.ExitCode {
				t.Errorf("exit mismatch: vp=%d cte=%d", cpu.ExitCode, core.ExitCode)
			}
			if string(cpu.Output) != string(core.Output) {
				t.Errorf("output mismatch: vp=%q cte=%q", cpu.Output, core.Output)
			}
			if cpu.InstrCount != core.InstrCount {
				t.Errorf("instr count mismatch: vp=%d cte=%d", cpu.InstrCount, core.InstrCount)
			}
		})
	}
}

func TestVPSensorInterrupts(t *testing.T) {
	// The sensor example app runs on the concrete VP against the NATIVE
	// sensor/PLIC models; a concrete filter below MIN keeps the value in
	// range and the assert passes.
	cpu := runGuest(t, guest.Program{
		Name: "vp-sensor",
		Sources: []guest.Source{guest.C("app.c", `
unsigned int *SCALER = (unsigned int *)0x10000000;
unsigned int *FILTER = (unsigned int *)0x10000004;
unsigned int *DATA = (unsigned int *)0x10000008;
volatile unsigned int got = 0;
void handler(void) { got = 1; }
int main(void) {
    __install_trap_entry();
    __set_mie_mask(1 << 11);
    __enable_mie();
    register_interrupt_handler(2, handler);
    *FILTER = 3;
    *SCALER = 10;
    while (!got) __wfi();
    unsigned int n = *DATA;
    CTE_assert(n <= 64);
    return (int)(n > 0);
}`)},
	})
	if cpu.Err != nil {
		t.Fatalf("vp sensor: %v", cpu.Err)
	}
	if cpu.ExitCode != 1 {
		t.Errorf("exit %d", cpu.ExitCode)
	}
	if cpu.Cycles < 10000 {
		t.Errorf("wfi must fast-forward to the sensor event: %d cycles", cpu.Cycles)
	}
}

func TestSyscKernel(t *testing.T) {
	k := &sysc.Kernel{}
	var order []int
	k.Schedule(10, func() { order = append(order, 1) })
	k.Schedule(5, func() { order = append(order, 2) })
	k.Schedule(5, func() { order = append(order, 3) }) // FIFO at same time
	k.Schedule(20, func() {
		order = append(order, 4)
		k.Schedule(0, func() { order = append(order, 5) }) // delta cycle
	})
	k.Run()
	want := []int{2, 3, 1, 4, 5}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("event order %v want %v", order, want)
		}
	}
	if k.Now() != 20 {
		t.Errorf("final time %d", k.Now())
	}
}

func TestSyscEvent(t *testing.T) {
	k := &sysc.Kernel{}
	e := k.NewEvent()
	count := 0
	e.Sensitive(func() { count++ })
	e.Sensitive(func() { count += 10 })
	e.Notify(3)
	k.Run()
	if count != 11 {
		t.Errorf("count %d", count)
	}
}

func TestSyscBusRouting(t *testing.T) {
	var bus sysc.Bus
	p := &PLIC{enable: 0xffffffff}
	p.cpu = New(Config{RamBase: 0, RamSize: 4096})
	bus.Map("plic", 0x1000, 0x100, p)
	tgt, local, err := bus.Route(0x1008)
	if err != nil || tgt != sysc.Target(p) || local != 8 {
		t.Errorf("route: %v %v %v", tgt, local, err)
	}
	if _, _, err := bus.Route(0x5000); err == nil {
		t.Error("unmapped address must error")
	}
}
