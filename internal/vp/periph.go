package vp

import (
	"encoding/binary"

	"rvcte/internal/sysc"
)

// Native (SystemC-style) peripheral models for the concrete VP baseline.
// Register layouts match the software models in internal/guest, so the
// same guest binaries drive either integration style.

// PLIC is the native platform-level interrupt controller.
type PLIC struct {
	cpu      *CPU
	pending  uint32
	enable   uint32
	priority [32]uint32
}

// NewPLIC creates and maps a PLIC-compatible target.
func NewPLIC(cpu *CPU) *PLIC {
	p := &PLIC{cpu: cpu, enable: 0xffffffff}
	for i := range p.priority {
		p.priority[i] = 1
	}
	p.priority[0] = 0
	return p
}

// Raise asserts interrupt source src.
func (p *PLIC) Raise(src uint32) {
	if src == 0 || src >= 32 {
		return
	}
	p.pending |= 1 << src
	p.update()
}

func (p *PLIC) update() {
	p.cpu.SetIRQ(11, p.pending&p.enable != 0)
}

func (p *PLIC) claim() uint32 {
	var best, bestPrio uint32
	for i := uint32(1); i < 32; i++ {
		if p.pending&(1<<i) != 0 && p.enable&(1<<i) != 0 && p.priority[i] > bestPrio {
			best, bestPrio = i, p.priority[i]
		}
	}
	if best != 0 {
		p.pending &^= 1 << best
		p.update()
	}
	return best
}

// BTransport implements sysc.Target.
func (p *PLIC) BTransport(addr uint32, data []byte, isRead bool) {
	le := binary.LittleEndian
	switch {
	case addr == 0x0:
		if isRead {
			le.PutUint32(data, p.claim())
		}
	case addr == 0x4:
		if isRead {
			le.PutUint32(data, p.enable)
		} else {
			p.enable = le.Uint32(data)
			p.update()
		}
	case addr == 0x8:
		if isRead {
			le.PutUint32(data, p.pending)
		}
	case addr >= 0x10 && addr < 0x10+32*4:
		idx := (addr - 0x10) / 4
		if isRead {
			le.PutUint32(data, p.priority[idx])
		} else {
			p.priority[idx] = le.Uint32(data)
		}
	}
}

// CLINT is the native core-local interruptor (32-bit mtime/mtimecmp).
type CLINT struct {
	cpu      *CPU
	mtimecmp uint32
}

// NewCLINT creates the CLINT model.
func NewCLINT(cpu *CPU) *CLINT { return &CLINT{cpu: cpu, mtimecmp: 0xffffffff} }

func (cl *CLINT) check() {
	now := uint32(cl.cpu.Cycles)
	if now >= cl.mtimecmp {
		cl.cpu.SetIRQ(7, true)
		return
	}
	cl.cpu.Kernel.ScheduleNamed(clintCheckEvent, sysc.Time(cl.mtimecmp-now), cl.check)
}

// BTransport implements sysc.Target.
func (cl *CLINT) BTransport(addr uint32, data []byte, isRead bool) {
	le := binary.LittleEndian
	switch addr {
	case 0x4000: // mtimecmp
		if isRead {
			le.PutUint32(data, cl.mtimecmp)
		} else {
			cl.mtimecmp = le.Uint32(data)
			cl.cpu.SetIRQ(7, false)
			cl.check()
		}
	case 0xbff8: // mtime
		if isRead {
			le.PutUint32(data, uint32(cl.cpu.Cycles))
		}
	}
}

// Sensor is the native sensor peripheral (the SystemC original of the
// paper's Fig. 2 software model): a thread-like process periodically
// generates data and raises an interrupt through the PLIC.
type Sensor struct {
	cpu    *CPU
	plic   *PLIC
	scaler uint32
	filter uint32
	data   uint32
	lcg    uint32
	minVal uint32
	maxVal uint32
	irq    uint32
	armed  bool
}

// NewSensor creates the sensor model (sensor range and IRQ source match
// the software model defaults).
func NewSensor(cpu *CPU, plic *PLIC) *Sensor {
	return &Sensor{cpu: cpu, plic: plic, scaler: 25, lcg: 77777, minVal: 16, maxVal: 64, irq: 2}
}

func (s *Sensor) update() {
	s.lcg = s.lcg*1103515245 + 12345
	s.data = s.minVal + (s.lcg>>8)%(s.maxVal-s.minVal+1)
	s.data -= s.filter
	s.plic.Raise(s.irq)
	s.cpu.Kernel.ScheduleNamed(sensorUpdateEvent, sysc.Time(s.scaler*1000), s.update)
}

// BTransport implements sysc.Target (register map: 0x0 scaler, 0x4
// filter, 0x8 data).
func (s *Sensor) BTransport(addr uint32, data []byte, isRead bool) {
	le := binary.LittleEndian
	switch addr {
	case 0x0:
		if isRead {
			le.PutUint32(data, s.scaler)
		} else {
			s.scaler = le.Uint32(data)
			if !s.armed {
				s.armed = true
				s.cpu.Kernel.ScheduleNamed(sensorUpdateEvent, sysc.Time(s.scaler*1000), s.update)
			}
		}
	case 0x4:
		if isRead {
			le.PutUint32(data, s.filter)
		} else {
			s.filter = le.Uint32(data)
			if s.filter >= s.minVal {
				s.filter = s.minVal + 1 // same seeded bug as the SW model
			}
		}
	case 0x8:
		if isRead {
			le.PutUint32(data, s.data)
		} else {
			s.data = le.Uint32(data)
		}
	}
}

// Event names under which the timed peripheral processes are scheduled;
// Machine.Clone re-binds pending events to the cloned models by these
// names (sysc.Kernel.Restore).
const (
	sensorUpdateEvent = "sensor.update"
	clintCheckEvent   = "clint.check"
)

// Standard base addresses (mirroring the guest package's address map).
const (
	SensorBase = 0x10000000
	PLICBase   = 0x10010000
	CLINTBase  = 0x10020000
	PeriphSize = 0x10000
)

// AttachStandardPeripherals maps the sensor + PLIC + CLINT set at the
// standard addresses and returns them.
func AttachStandardPeripherals(cpu *CPU) (*Sensor, *PLIC, *CLINT) {
	plic := NewPLIC(cpu)
	clint := NewCLINT(cpu)
	sensor := NewSensor(cpu, plic)
	cpu.Bus.Map("sensor", SensorBase, PeriphSize, sensor)
	cpu.Bus.Map("plic", PLICBase, PeriphSize, plic)
	cpu.Bus.Map("clint", CLINTBase, PeriphSize, clint)
	return sensor, plic, clint
}
