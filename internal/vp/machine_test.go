package vp

import (
	"strings"
	"testing"

	"rvcte/internal/guest"
	"rvcte/internal/sysc"
)

func TestSyscSnapshotRestore(t *testing.T) {
	k := &sysc.Kernel{}
	var order []string
	k.ScheduleNamed("a", 10, func() { order = append(order, "a") })
	k.ScheduleNamed("b", 5, func() { order = append(order, "b") })
	k.ScheduleNamed("c", 5, func() { order = append(order, "c") }) // FIFO tie with b

	st, err := k.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(st.Events) != 3 {
		t.Fatalf("snapshot events: %d", len(st.Events))
	}

	// Restore into a fresh kernel with re-bound processes.
	var order2 []string
	k2 := &sysc.Kernel{}
	err = k2.Restore(st, func(name string) sysc.Process {
		n := name
		return func() { order2 = append(order2, n) }
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	k.Run()
	k2.Run()
	if strings.Join(order, "") != "bca" || strings.Join(order2, "") != "bca" {
		t.Fatalf("orders diverge: original %v restored %v", order, order2)
	}
	if k2.Now() != k.Now() {
		t.Errorf("restored time %d want %d", k2.Now(), k.Now())
	}

	// An anonymous closure has no identity to re-bind: Snapshot must fail.
	k3 := &sysc.Kernel{}
	k3.Schedule(1, func() {})
	if _, err := k3.Snapshot(); err == nil {
		t.Error("snapshot with anonymous event must fail")
	}

	// Restore must fail on an unresolvable name.
	k4 := &sysc.Kernel{}
	err = k4.Restore(st, func(string) sysc.Process { return nil })
	if err == nil {
		t.Error("restore with unresolvable name must fail")
	}
}

// multiIRQGuest counts five sensor interrupts, printing the data register
// after each, so the run has pending kernel events throughout.
var multiIRQGuest = guest.Program{
	Name: "vp-clone",
	Sources: []guest.Source{guest.C("app.c", `
unsigned int *SCALER = (unsigned int *)0x10000000;
unsigned int *FILTER = (unsigned int *)0x10000004;
unsigned int *DATA = (unsigned int *)0x10000008;
volatile unsigned int count = 0;
void handler(void) { count++; }
int main(void) {
    __install_trap_entry();
    __set_mie_mask(1 << 11);
    __enable_mie();
    register_interrupt_handler(2, handler);
    *FILTER = 3;
    *SCALER = 10;
    unsigned int seen = 0;
    while (seen < 5) {
        while (count == seen) __wfi();
        seen = count;
        print_u32(*DATA);
    }
    return (int)seen;
}`)},
}

func TestMachineCloneMidRun(t *testing.T) {
	elf, err := guest.Build(multiIRQGuest)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{RamBase: ramBase, RamSize: ramSize, MaxInstr: 100_000_000,
		StackTop: ramBase + ramSize - 16384}
	m := NewMachine(cfg)
	if err := m.CPU.LoadELF(elf); err != nil {
		t.Fatal(err)
	}

	// Run until the first interrupt has been serviced: the sensor is armed
	// and its next update event is pending in the kernel.
	for !m.CPU.Halted() && len(m.CPU.Output) == 0 {
		m.CPU.Step()
	}
	if m.CPU.Halted() {
		t.Fatalf("halted before first interrupt: err=%v exited=%v", m.CPU.Err, m.CPU.Exited)
	}
	if !m.CPU.Kernel.Pending() {
		t.Fatal("no pending event at clone point")
	}

	clone, err := m.Clone()
	if err != nil {
		t.Fatalf("clone: %v", err)
	}

	// Run the clone to completion first; the original must be unaffected.
	instrAt, outAt := m.CPU.InstrCount, len(m.CPU.Output)
	clone.CPU.Run(0)
	if clone.CPU.Err != nil {
		t.Fatalf("clone run: %v", clone.CPU.Err)
	}
	if m.CPU.InstrCount != instrAt || len(m.CPU.Output) != outAt || m.CPU.Halted() {
		t.Fatal("running the clone perturbed the original")
	}

	m.CPU.Run(0)
	if m.CPU.Err != nil {
		t.Fatalf("original run: %v", m.CPU.Err)
	}

	// Both continuations must be bit-identical: same interrupt schedule,
	// same sensor data sequence, same cost accounting.
	if string(clone.CPU.Output) != string(m.CPU.Output) {
		t.Errorf("output diverged: clone %q original %q", clone.CPU.Output, m.CPU.Output)
	}
	if clone.CPU.ExitCode != m.CPU.ExitCode || clone.CPU.ExitCode != 5 {
		t.Errorf("exit codes: clone %d original %d", clone.CPU.ExitCode, m.CPU.ExitCode)
	}
	if clone.CPU.InstrCount != m.CPU.InstrCount {
		t.Errorf("instr counts: clone %d original %d", clone.CPU.InstrCount, m.CPU.InstrCount)
	}
	if clone.CPU.Cycles != m.CPU.Cycles {
		t.Errorf("cycles: clone %d original %d", clone.CPU.Cycles, m.CPU.Cycles)
	}
}

func TestMachineCloneAnonymousEventFails(t *testing.T) {
	m := NewMachine(Config{RamBase: ramBase, RamSize: 4096})
	m.CPU.Kernel.Schedule(5, func() {})
	if _, err := m.Clone(); err == nil {
		t.Error("clone with anonymous pending event must fail")
	}
}
