package vp

import (
	"rvcte/internal/rv32"
	"rvcte/internal/sysc"
)

// exec retires one decoded instruction with native arithmetic.
func (c *CPU) exec(in rv32.Inst) {
	next := c.PC + uint32(in.Size)
	switch in.Op {
	case rv32.OpLUI:
		c.setReg(in.Rd, uint32(in.Imm))
	case rv32.OpAUIPC:
		c.setReg(in.Rd, c.PC+uint32(in.Imm))
	case rv32.OpJAL:
		c.setReg(in.Rd, next)
		c.PC += uint32(in.Imm)
		return
	case rv32.OpJALR:
		t := (c.reg(in.Rs1) + uint32(in.Imm)) &^ 1
		c.setReg(in.Rd, next)
		c.PC = t
		return
	case rv32.OpBEQ, rv32.OpBNE, rv32.OpBLT, rv32.OpBGE, rv32.OpBLTU, rv32.OpBGEU:
		a, b := c.reg(in.Rs1), c.reg(in.Rs2)
		var taken bool
		switch in.Op {
		case rv32.OpBEQ:
			taken = a == b
		case rv32.OpBNE:
			taken = a != b
		case rv32.OpBLT:
			taken = int32(a) < int32(b)
		case rv32.OpBGE:
			taken = int32(a) >= int32(b)
		case rv32.OpBLTU:
			taken = a < b
		default:
			taken = a >= b
		}
		if taken {
			c.PC += uint32(in.Imm)
		} else {
			c.PC = next
		}
		return
	case rv32.OpLB, rv32.OpLH, rv32.OpLW, rv32.OpLBU, rv32.OpLHU:
		addr := c.reg(in.Rs1) + uint32(in.Imm)
		size := map[rv32.Op]int{rv32.OpLB: 1, rv32.OpLBU: 1, rv32.OpLH: 2, rv32.OpLHU: 2, rv32.OpLW: 4}[in.Op]
		v, ok := c.load(addr, size)
		if !ok {
			return
		}
		switch in.Op {
		case rv32.OpLB:
			v = uint32(int32(int8(v)))
		case rv32.OpLH:
			v = uint32(int32(int16(v)))
		}
		c.setReg(in.Rd, v)
	case rv32.OpSB, rv32.OpSH, rv32.OpSW:
		addr := c.reg(in.Rs1) + uint32(in.Imm)
		size := map[rv32.Op]int{rv32.OpSB: 1, rv32.OpSH: 2, rv32.OpSW: 4}[in.Op]
		if !c.store(addr, size, c.reg(in.Rs2)) {
			return
		}
	case rv32.OpADDI:
		c.setReg(in.Rd, c.reg(in.Rs1)+uint32(in.Imm))
	case rv32.OpSLTI:
		c.setReg(in.Rd, b2u(int32(c.reg(in.Rs1)) < in.Imm))
	case rv32.OpSLTIU:
		c.setReg(in.Rd, b2u(c.reg(in.Rs1) < uint32(in.Imm)))
	case rv32.OpXORI:
		c.setReg(in.Rd, c.reg(in.Rs1)^uint32(in.Imm))
	case rv32.OpORI:
		c.setReg(in.Rd, c.reg(in.Rs1)|uint32(in.Imm))
	case rv32.OpANDI:
		c.setReg(in.Rd, c.reg(in.Rs1)&uint32(in.Imm))
	case rv32.OpSLLI:
		c.setReg(in.Rd, c.reg(in.Rs1)<<uint32(in.Imm&31))
	case rv32.OpSRLI:
		c.setReg(in.Rd, c.reg(in.Rs1)>>uint32(in.Imm&31))
	case rv32.OpSRAI:
		c.setReg(in.Rd, uint32(int32(c.reg(in.Rs1))>>uint32(in.Imm&31)))
	case rv32.OpADD:
		c.setReg(in.Rd, c.reg(in.Rs1)+c.reg(in.Rs2))
	case rv32.OpSUB:
		c.setReg(in.Rd, c.reg(in.Rs1)-c.reg(in.Rs2))
	case rv32.OpSLL:
		c.setReg(in.Rd, c.reg(in.Rs1)<<(c.reg(in.Rs2)&31))
	case rv32.OpSLT:
		c.setReg(in.Rd, b2u(int32(c.reg(in.Rs1)) < int32(c.reg(in.Rs2))))
	case rv32.OpSLTU:
		c.setReg(in.Rd, b2u(c.reg(in.Rs1) < c.reg(in.Rs2)))
	case rv32.OpXOR:
		c.setReg(in.Rd, c.reg(in.Rs1)^c.reg(in.Rs2))
	case rv32.OpSRL:
		c.setReg(in.Rd, c.reg(in.Rs1)>>(c.reg(in.Rs2)&31))
	case rv32.OpSRA:
		c.setReg(in.Rd, uint32(int32(c.reg(in.Rs1))>>(c.reg(in.Rs2)&31)))
	case rv32.OpOR:
		c.setReg(in.Rd, c.reg(in.Rs1)|c.reg(in.Rs2))
	case rv32.OpAND:
		c.setReg(in.Rd, c.reg(in.Rs1)&c.reg(in.Rs2))
	case rv32.OpMUL:
		c.setReg(in.Rd, c.reg(in.Rs1)*c.reg(in.Rs2))
	case rv32.OpMULH:
		c.setReg(in.Rd, uint32(uint64(int64(int32(c.reg(in.Rs1)))*int64(int32(c.reg(in.Rs2))))>>32))
	case rv32.OpMULHSU:
		c.setReg(in.Rd, uint32(uint64(int64(int32(c.reg(in.Rs1)))*int64(uint64(c.reg(in.Rs2))))>>32))
	case rv32.OpMULHU:
		c.setReg(in.Rd, uint32(uint64(c.reg(in.Rs1))*uint64(c.reg(in.Rs2))>>32))
	case rv32.OpDIV:
		a, b := int32(c.reg(in.Rs1)), int32(c.reg(in.Rs2))
		switch {
		case b == 0:
			c.setReg(in.Rd, 0xffffffff)
		case a == -0x80000000 && b == -1:
			c.setReg(in.Rd, 0x80000000)
		default:
			c.setReg(in.Rd, uint32(a/b))
		}
	case rv32.OpDIVU:
		if c.reg(in.Rs2) == 0 {
			c.setReg(in.Rd, 0xffffffff)
		} else {
			c.setReg(in.Rd, c.reg(in.Rs1)/c.reg(in.Rs2))
		}
	case rv32.OpREM:
		a, b := int32(c.reg(in.Rs1)), int32(c.reg(in.Rs2))
		switch {
		case b == 0:
			c.setReg(in.Rd, uint32(a))
		case a == -0x80000000 && b == -1:
			c.setReg(in.Rd, 0)
		default:
			c.setReg(in.Rd, uint32(a%b))
		}
	case rv32.OpREMU:
		if c.reg(in.Rs2) == 0 {
			c.setReg(in.Rd, c.reg(in.Rs1))
		} else {
			c.setReg(in.Rd, c.reg(in.Rs1)%c.reg(in.Rs2))
		}
	case rv32.OpFENCE:
	case rv32.OpECALL:
		c.ecall()
		if c.Halted() {
			return
		}
	case rv32.OpEBREAK:
		c.fail("ebreak")
		return
	case rv32.OpMRET:
		const mieBit, mpieBit = uint32(1 << 3), uint32(1 << 7)
		c.MStatus = c.MStatus&^mieBit | (c.MStatus&mpieBit)>>4
		c.MStatus |= mpieBit
		c.PC = c.MEPC
		return
	case rv32.OpWFI:
		// Fast-forward to the next kernel event if nothing is pending.
		if c.MIP&c.MIE == 0 {
			if t, ok := c.Kernel.NextEventTime(); ok {
				if uint64(t) > c.Cycles {
					c.Cycles = uint64(t)
				}
				c.Kernel.AdvanceTo(t)
			} else {
				c.fail("wfi deadlock")
				return
			}
		}
	case rv32.OpCSRRW, rv32.OpCSRRS, rv32.OpCSRRC:
		old := c.readCSR(uint16(in.Imm))
		v := c.reg(in.Rs1)
		switch in.Op {
		case rv32.OpCSRRW:
			c.writeCSR(uint16(in.Imm), v)
		case rv32.OpCSRRS:
			if in.Rs1 != 0 {
				c.writeCSR(uint16(in.Imm), old|v)
			}
		case rv32.OpCSRRC:
			if in.Rs1 != 0 {
				c.writeCSR(uint16(in.Imm), old&^v)
			}
		}
		c.setReg(in.Rd, old)
	case rv32.OpCSRRWI, rv32.OpCSRRSI, rv32.OpCSRRCI:
		old := c.readCSR(uint16(in.Imm))
		z := uint32(in.Rs2)
		switch in.Op {
		case rv32.OpCSRRWI:
			c.writeCSR(uint16(in.Imm), z)
		case rv32.OpCSRRSI:
			if z != 0 {
				c.writeCSR(uint16(in.Imm), old|z)
			}
		case rv32.OpCSRRCI:
			if z != 0 {
				c.writeCSR(uint16(in.Imm), old&^z)
			}
		}
		c.setReg(in.Rd, old)
	default:
		c.fail("unimplemented op %v", in.Op)
		return
	}
	if !c.Halted() {
		c.PC = next
	}
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// ecall implements the concrete subset of the CTE interface: guests built
// for the concolic VP run unchanged, with symbolic operations degraded to
// their concrete semantics (make_symbolic assigns pseudo-random values,
// assume/assert check their concrete condition).
func (c *CPU) ecall() {
	code := c.Regs[17]
	a0, a1 := c.Regs[10], c.Regs[11]
	switch code {
	case 0: // exit
		c.Exited = true
		c.ExitCode = a0
	case 1: // make_symbolic -> pseudo-random concrete values
		for i := uint32(0); i < a1; i++ {
			c.lcg = c.lcg*1103515245 + 12345
			c.store(a0+i, 1, c.lcg>>16)
		}
	case 2: // assume
		if a0 == 0 {
			c.fail("assume(false)")
		}
	case 3: // assert
		if a0 == 0 {
			c.fail("assertion failed")
		}
	case 6: // get_cycles
		c.setReg(10, uint32(c.Cycles))
		c.setReg(11, uint32(c.Cycles>>32))
	case 7: // trigger_irq (reachable only from SW peripheral models,
		// which the concrete VP replaces with native ones)
		c.SetIRQ(a0&31, a1 != 0)
	case 10: // putchar
		c.Output = append(c.Output, byte(a0))
	case 8, 9, 11, 12:
		// protected-memory registration, cancel_notify, is_symbolic:
		// no-ops on the concrete VP
		if code == 12 {
			c.setReg(10, 0)
		}
	default:
		c.fail("unsupported ecall %d on concrete VP", code)
	}
}

func (c *CPU) readCSR(csr uint16) uint32 {
	switch csr {
	case rv32.CSRMStatus:
		return c.MStatus
	case rv32.CSRMIE:
		return c.MIE
	case rv32.CSRMIP:
		return c.MIP
	case rv32.CSRMTVec:
		return c.MTVec
	case rv32.CSRMScratch:
		return c.MScratch
	case rv32.CSRMEPC:
		return c.MEPC
	case rv32.CSRMCause:
		return c.MCause
	case rv32.CSRMTVal:
		return c.MTVal
	case rv32.CSRMCycle:
		return uint32(c.Cycles)
	case rv32.CSRMCycleH:
		return uint32(c.Cycles >> 32)
	}
	return 0
}

func (c *CPU) writeCSR(csr uint16, v uint32) {
	switch csr {
	case rv32.CSRMStatus:
		c.MStatus = v
	case rv32.CSRMIE:
		c.MIE = v
	case rv32.CSRMIP:
		c.MIP = v
	case rv32.CSRMTVec:
		c.MTVec = v
	case rv32.CSRMScratch:
		c.MScratch = v
	case rv32.CSRMEPC:
		c.MEPC = v
	case rv32.CSRMCause:
		c.MCause = v
	case rv32.CSRMTVal:
		c.MTVal = v
	}
}

var _ = sysc.Time(0)
