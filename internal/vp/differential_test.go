package vp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"rvcte/internal/guest"
	"rvcte/internal/nestedvm"
	"rvcte/internal/smt"
)

// genRandomProgram emits a random but deterministic mini-C program:
// mixed signed/unsigned locals and a global array, mutated through
// random expressions inside a loop, with the full machine state folded
// into printed output. Division by zero and overflow are well-defined in
// the dialect (RISC-V semantics), so any generated program is a valid
// differential test vector.
func genRandomProgram(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("unsigned int garr[16];\nint main(void) {\n")
	nVars := 4 + rng.Intn(3)
	for i := 0; i < nVars; i++ {
		if rng.Intn(2) == 0 {
			fmt.Fprintf(&sb, "    unsigned int v%d = %du;\n", i, rng.Uint32())
		} else {
			fmt.Fprintf(&sb, "    int v%d = %d;\n", i, int32(rng.Uint32()))
		}
	}
	sb.WriteString("    int it;\n    for (it = 0; it < 40; it++) {\n")
	expr := func() string {
		a := fmt.Sprintf("v%d", rng.Intn(nVars))
		b := fmt.Sprintf("v%d", rng.Intn(nVars))
		if rng.Intn(4) == 0 {
			b = fmt.Sprintf("%d", rng.Intn(1<<16))
		}
		ops := []string{"+", "-", "*", "/", "%", "&", "|", "^", ">>", "<<", "<", ">", "==", "!="}
		op := ops[rng.Intn(len(ops))]
		if op == "<<" || op == ">>" {
			b = fmt.Sprintf("(%s & 31)", b)
		}
		return fmt.Sprintf("(%s %s %s)", a, op, b)
	}
	nStmts := 6 + rng.Intn(6)
	for s := 0; s < nStmts; s++ {
		switch rng.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, "        v%d = (int)%s;\n", rng.Intn(nVars), expr())
		case 1:
			fmt.Fprintf(&sb, "        if (%s) v%d = (int)%s; else v%d = (int)%s;\n",
				expr(), rng.Intn(nVars), expr(), rng.Intn(nVars), expr())
		case 2:
			fmt.Fprintf(&sb, "        garr[(unsigned int)v%d & 15] = (unsigned int)%s;\n",
				rng.Intn(nVars), expr())
		default:
			fmt.Fprintf(&sb, "        v%d = (int)(garr[(unsigned int)%s & 15] + (unsigned int)v%d);\n",
				rng.Intn(nVars), expr(), rng.Intn(nVars))
		}
	}
	sb.WriteString("    }\n")
	for i := 0; i < nVars; i++ {
		fmt.Fprintf(&sb, "    print_u32((unsigned int)v%d); cte_putchar(' ');\n", i)
	}
	sb.WriteString("    { int k; for (k = 0; k < 16; k++) { print_u32(garr[k]); cte_putchar(' '); } }\n")
	sb.WriteString("    return (int)((unsigned int)v0 & 0x7f);\n}\n")
	return sb.String()
}

// TestDifferentialRandomPrograms: the concrete VP, the concolic ISS and
// the nested interpreter must agree on exit code, output and retired
// instruction count for random programs.
func TestDifferentialRandomPrograms(t *testing.T) {
	iters := 25
	if testing.Short() {
		iters = 5
	}
	rng := rand.New(rand.NewSource(20260705))
	for i := 0; i < iters; i++ {
		src := genRandomProgram(rng)
		p := guest.Program{
			Name:    fmt.Sprintf("diff-%d", i),
			Sources: []guest.Source{guest.C("main.c", src)},
		}

		// Concrete VP.
		cpu := runGuest(t, p)
		if cpu.Err != nil {
			t.Fatalf("iter %d: vp error: %v\n%s", i, cpu.Err, src)
		}

		// Concolic ISS.
		core, _, err := guest.NewCore(smt.NewBuilder(), p)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		core.Run(0)
		if core.Err != nil {
			t.Fatalf("iter %d: iss error: %v\n%s", i, core.Err, src)
		}

		// Nested interpreter.
		nested, _, err := guest.NewCore(smt.NewBuilder(), p)
		if err != nil {
			t.Fatalf("iter %d: %v", i, err)
		}
		nestedvm.Attach(nested)
		nested.Run(0)
		if nested.Err != nil {
			t.Fatalf("iter %d: nested error: %v\n%s", i, nested.Err, src)
		}

		if cpu.ExitCode != core.ExitCode || core.ExitCode != nested.ExitCode {
			t.Fatalf("iter %d: exit codes differ: vp=%d iss=%d nested=%d\n%s",
				i, cpu.ExitCode, core.ExitCode, nested.ExitCode, src)
		}
		if string(cpu.Output) != string(core.Output) || string(core.Output) != string(nested.Output) {
			t.Fatalf("iter %d: outputs differ:\nvp:     %q\niss:    %q\nnested: %q\n%s",
				i, cpu.Output, core.Output, nested.Output, src)
		}
		if cpu.InstrCount != core.InstrCount || core.InstrCount != nested.InstrCount {
			t.Fatalf("iter %d: instruction counts differ: vp=%d iss=%d nested=%d",
				i, cpu.InstrCount, core.InstrCount, nested.InstrCount)
		}
	}
}
