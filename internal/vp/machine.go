package vp

import (
	"fmt"

	"rvcte/internal/sysc"
)

// Machine bundles the concrete CPU with its standard peripheral set so
// the whole VP — including pending peripheral events in the sysc kernel
// — can be checkpointed and resumed. The concolic ISS forks live cores
// at divergence points (internal/iss); Machine.Clone is the concrete-VP
// counterpart, used to snapshot the native-peripheral baseline without
// re-running the prefix.
type Machine struct {
	CPU    *CPU
	Sensor *Sensor
	PLIC   *PLIC
	CLINT  *CLINT
}

// NewMachine creates a CPU with the standard peripherals attached.
func NewMachine(cfg Config) *Machine {
	cpu := New(cfg)
	sensor, plic, clint := AttachStandardPeripherals(cpu)
	return &Machine{CPU: cpu, Sensor: sensor, PLIC: plic, CLINT: clint}
}

// Clone deep-copies the machine: CPU architectural state, RAM, output,
// the three peripheral models (with back-pointers re-bound to the new
// CPU), and the kernel's pending event queue, restored by event name so
// the clone fires the same notifications at the same times as the
// original would. It fails if an anonymous (un-named) event is pending,
// since a closure cannot be re-bound to the cloned models.
func (m *Machine) Clone() (*Machine, error) {
	st, err := m.CPU.Kernel.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("vp: clone: %w", err)
	}

	cpu := &CPU{}
	*cpu = *m.CPU
	cpu.Mem = append([]byte(nil), m.CPU.Mem...)
	cpu.Output = append([]byte(nil), m.CPU.Output...)
	cpu.Kernel = &sysc.Kernel{}
	cpu.Bus = &sysc.Bus{}

	plic := &PLIC{}
	*plic = *m.PLIC
	plic.cpu = cpu
	clint := &CLINT{}
	*clint = *m.CLINT
	clint.cpu = cpu
	sensor := &Sensor{}
	*sensor = *m.Sensor
	sensor.cpu = cpu
	sensor.plic = plic

	cpu.Bus.Map("sensor", SensorBase, PeriphSize, sensor)
	cpu.Bus.Map("plic", PLICBase, PeriphSize, plic)
	cpu.Bus.Map("clint", CLINTBase, PeriphSize, clint)

	err = cpu.Kernel.Restore(st, func(name string) sysc.Process {
		switch name {
		case sensorUpdateEvent:
			return sensor.update
		case clintCheckEvent:
			return clint.check
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("vp: clone: %w", err)
	}
	return &Machine{CPU: cpu, Sensor: sensor, PLIC: plic, CLINT: clint}, nil
}
