// Package vp is the concrete virtual prototype baseline of Table 1: the
// same RV32IMC ISS as the CTE core, but operating on native uint32 data
// with direct (DMI-style) flat memory access, and with peripherals
// implemented natively in Go on a SystemC-like kernel (package sysc)
// instead of as software models. It executes the same guest ELFs as the
// concolic VP.
package vp

import (
	"fmt"

	"rvcte/internal/relf"
	"rvcte/internal/rv32"
	"rvcte/internal/sysc"
)

// Config fixes the memory map.
type Config struct {
	RamBase  uint32
	RamSize  uint32
	StackTop uint32
	MaxInstr uint64
}

// CPU is the concrete RV32IMC core.
type CPU struct {
	Mem  []byte // flat RAM, index = addr - RamBase (DMI)
	Regs [32]uint32
	PC   uint32

	MStatus, MIE, MIP, MTVec, MEPC, MCause, MTVal, MScratch uint32

	Cycles     uint64
	InstrCount uint64

	Cfg    Config
	Kernel *sysc.Kernel
	Bus    *sysc.Bus

	Exited   bool
	ExitCode uint32
	Err      error

	Output []byte

	lcg uint32 // concrete stand-in for make_symbolic
}

// New creates a concrete VP.
func New(cfg Config) *CPU {
	if cfg.StackTop == 0 {
		cfg.StackTop = cfg.RamBase + cfg.RamSize
	}
	c := &CPU{
		Mem:    make([]byte, cfg.RamSize),
		Cfg:    cfg,
		Kernel: &sysc.Kernel{},
		Bus:    &sysc.Bus{},
		lcg:    0xdecafbad,
	}
	c.Regs[2] = cfg.StackTop
	return c
}

// LoadELF loads a guest executable.
func (c *CPU) LoadELF(f *relf.File) error {
	if f.Addr < c.Cfg.RamBase || f.Addr+uint32(len(f.Data)) > c.Cfg.RamBase+c.Cfg.RamSize {
		return fmt.Errorf("vp: image outside RAM")
	}
	copy(c.Mem[f.Addr-c.Cfg.RamBase:], f.Data)
	c.PC = f.Entry
	return nil
}

// SetIRQ drives a machine interrupt line (3, 7 or 11).
func (c *CPU) SetIRQ(line uint32, level bool) {
	if level {
		c.MIP |= 1 << line
	} else {
		c.MIP &^= 1 << line
	}
}

func (c *CPU) fail(format string, args ...any) {
	if c.Err == nil {
		c.Err = fmt.Errorf("vp: pc=%#x: %s", c.PC, fmt.Sprintf(format, args...))
	}
}

// Halted reports whether execution has stopped.
func (c *CPU) Halted() bool { return c.Exited || c.Err != nil }

func (c *CPU) inRAM(addr uint32, n int) bool {
	return addr >= c.Cfg.RamBase && addr+uint32(n) >= addr &&
		addr+uint32(n) <= c.Cfg.RamBase+c.Cfg.RamSize
}

// load reads n bytes little-endian.
func (c *CPU) load(addr uint32, n int) (uint32, bool) {
	if c.inRAM(addr, n) {
		off := addr - c.Cfg.RamBase
		var v uint32
		for i := 0; i < n; i++ {
			v |= uint32(c.Mem[off+uint32(i)]) << (8 * i)
		}
		return v, true
	}
	t, local, err := c.Bus.Route(addr)
	if err != nil {
		c.fail("illegal load at %#x", addr)
		return 0, false
	}
	var buf [4]byte
	t.BTransport(local, buf[:n], true)
	var v uint32
	for i := 0; i < n; i++ {
		v |= uint32(buf[i]) << (8 * i)
	}
	return v, true
}

func (c *CPU) store(addr uint32, n int, v uint32) bool {
	if c.inRAM(addr, n) {
		off := addr - c.Cfg.RamBase
		for i := 0; i < n; i++ {
			c.Mem[off+uint32(i)] = byte(v >> (8 * i))
		}
		return true
	}
	t, local, err := c.Bus.Route(addr)
	if err != nil {
		c.fail("illegal store at %#x", addr)
		return false
	}
	var buf [4]byte
	for i := 0; i < n; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	t.BTransport(local, buf[:n], false)
	return true
}

// Run executes until halt or the instruction budget is exhausted.
func (c *CPU) Run(maxInstr uint64) {
	if maxInstr == 0 {
		maxInstr = c.Cfg.MaxInstr
	}
	for !c.Halted() {
		if maxInstr > 0 && c.InstrCount >= maxInstr {
			c.fail("instruction limit exceeded")
			return
		}
		c.Step()
	}
}

// Step retires one instruction, interleaving kernel events.
func (c *CPU) Step() {
	if c.Halted() {
		return
	}
	c.Kernel.AdvanceTo(sysc.Time(c.Cycles))
	if c.takeInterrupt() {
		return
	}
	if !c.inRAM(c.PC, 4) || c.PC&1 != 0 {
		c.fail("bad pc")
		return
	}
	off := c.PC - c.Cfg.RamBase
	word := uint32(c.Mem[off]) | uint32(c.Mem[off+1])<<8
	if word&3 == 3 {
		word |= uint32(c.Mem[off+2])<<16 | uint32(c.Mem[off+3])<<24
	}
	inst := rv32.Decode(word)
	if inst.Op == rv32.OpIllegal {
		c.fail("illegal instruction %#x", word)
		return
	}
	c.exec(inst)
	c.InstrCount++
	c.Cycles++
}

func (c *CPU) takeInterrupt() bool {
	const mieBit = uint32(1 << 3)
	if c.MStatus&mieBit == 0 {
		return false
	}
	pending := c.MIP & c.MIE
	if pending == 0 {
		return false
	}
	var cause uint32
	switch {
	case pending&(1<<rv32.IrqMachineExternal) != 0:
		cause = rv32.IrqMachineExternal
	case pending&(1<<rv32.IrqMachineSoftware) != 0:
		cause = rv32.IrqMachineSoftware
	default:
		cause = rv32.IrqMachineTimer
	}
	c.MEPC = c.PC
	c.MCause = rv32.CauseInterruptFlag | cause
	const mpieBit = uint32(1 << 7)
	c.MStatus = c.MStatus&^mpieBit | (c.MStatus&mieBit)<<4
	c.MStatus &^= mieBit
	c.PC = c.MTVec &^ 3
	return true
}

func (c *CPU) reg(r uint8) uint32 { return c.Regs[r] }

func (c *CPU) setReg(r uint8, v uint32) {
	if r != 0 {
		c.Regs[r] = v
	}
}
