// Package sysc is a lightweight discrete-event simulation kernel in the
// style of SystemC (IEEE 1666): simulated time, scheduled events with
// delta-cycle semantics, method processes re-triggered via notifications,
// and a TLM-2.0-flavoured blocking-transport bus. It hosts the native
// peripheral models of the concrete VP baseline (the "VP" column of
// Table 1), contrasting with the CTE approach where peripherals are
// software models executed on the ISS itself.
package sysc

import (
	"container/heap"
	"fmt"
)

// Time is simulation time in cycles.
type Time uint64

// Process is a schedulable callback (an SC_METHOD-style process: it runs
// to completion and may re-notify itself).
type Process func()

type event struct {
	at    Time
	delta uint64 // tie-break: preserves notify ordering within a cycle
	fn    Process
	name  string // snapshot identity; "" for closure-scheduled events
	seq   int    // heap index bookkeeping
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].delta < h[j].delta
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i]; h[i].seq, h[j].seq = i, j }
func (h *eventHeap) Push(x any)   { e := x.(*event); e.seq = len(*h); *h = append(*h, e) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Kernel is the simulation scheduler. The zero value is ready to use.
type Kernel struct {
	now    Time
	events eventHeap
	deltas uint64
}

// Now returns the current simulation time.
func (k *Kernel) Now() Time { return k.now }

// Schedule notifies fn after delay cycles (delay 0 = next delta cycle).
// Closures scheduled this way cannot be snapshotted (Snapshot errors);
// processes that must survive VP cloning use ScheduleNamed.
func (k *Kernel) Schedule(delay Time, fn Process) {
	k.deltas++
	heap.Push(&k.events, &event{at: k.now + delay, delta: k.deltas, fn: fn})
}

// ScheduleNamed is Schedule with a snapshot identity attached: the name
// (unique per process, e.g. "sensor.update") lets Snapshot serialize the
// pending event and Restore re-bind it to the cloned model's method. Go
// closures cannot be deep-copied, so named re-binding is what makes the
// event queue part of a clonable VP checkpoint.
func (k *Kernel) ScheduleNamed(name string, delay Time, fn Process) {
	k.deltas++
	heap.Push(&k.events, &event{at: k.now + delay, delta: k.deltas, fn: fn, name: name})
}

// ScheduledEvent is one pending notification in a KernelState: the
// process name plus its absolute due time and delta tie-break.
type ScheduledEvent struct {
	Name  string
	At    Time
	Delta uint64
}

// KernelState is a serializable snapshot of the scheduler: simulation
// time, the delta counter, and every pending event by name.
type KernelState struct {
	Now    Time
	Deltas uint64
	Events []ScheduledEvent
}

// Snapshot captures the scheduler state for later Restore on a cloned
// kernel. It fails when an anonymous (Schedule / Event.Notify) event is
// pending — a closure has no identity to re-bind on the clone.
func (k *Kernel) Snapshot() (KernelState, error) {
	st := KernelState{Now: k.now, Deltas: k.deltas}
	for _, e := range k.events {
		if e.name == "" {
			return KernelState{}, fmt.Errorf("sysc: pending event at t=%d was scheduled without a name; use ScheduleNamed for snapshottable processes", e.at)
		}
		st.Events = append(st.Events, ScheduledEvent{Name: e.name, At: e.at, Delta: e.delta})
	}
	return st, nil
}

// Restore rebuilds the scheduler from a snapshot, resolving each event
// name to the (cloned) process via resolve. Due times and delta
// tie-breaks are preserved exactly, so the restored kernel fires events
// in the same order as the original would have. Fails on a name resolve
// cannot map.
func (k *Kernel) Restore(st KernelState, resolve func(name string) Process) error {
	k.now = st.Now
	k.deltas = st.Deltas
	k.events = k.events[:0]
	for _, se := range st.Events {
		fn := resolve(se.Name)
		if fn == nil {
			return fmt.Errorf("sysc: restore: no process for event %q", se.Name)
		}
		heap.Push(&k.events, &event{at: se.At, delta: se.Delta, fn: fn, name: se.Name})
	}
	return nil
}

// Pending reports whether any event is scheduled.
func (k *Kernel) Pending() bool { return len(k.events) > 0 }

// NextEventTime returns the time of the earliest scheduled event; ok is
// false when the queue is empty.
func (k *Kernel) NextEventTime() (Time, bool) {
	if len(k.events) == 0 {
		return 0, false
	}
	return k.events[0].at, true
}

// AdvanceTo moves time forward to t, running every event that becomes
// due (in timestamp order, FIFO within a timestamp).
func (k *Kernel) AdvanceTo(t Time) {
	for len(k.events) > 0 && k.events[0].at <= t {
		e := heap.Pop(&k.events).(*event)
		if e.at > k.now {
			k.now = e.at
		}
		e.fn()
	}
	if t > k.now {
		k.now = t
	}
}

// Run drains the event queue completely (classic sc_start()).
func (k *Kernel) Run() {
	for len(k.events) > 0 {
		e := heap.Pop(&k.events).(*event)
		k.now = e.at
		e.fn()
	}
}

// Event is a named notification channel: processes sensitive to the
// event are re-run when it is notified (simplified sc_event).
type Event struct {
	k        *Kernel
	handlers []Process
}

// NewEvent creates an event bound to the kernel.
func (k *Kernel) NewEvent() *Event { return &Event{k: k} }

// Sensitive registers a process to run on each notification.
func (e *Event) Sensitive(p Process) { e.handlers = append(e.handlers, p) }

// Notify schedules every sensitive process after delay.
func (e *Event) Notify(delay Time) {
	for _, h := range e.handlers {
		e.k.Schedule(delay, h)
	}
}

// Target is a TLM-2.0-style blocking transport interface: data is read
// or written at a target-local address.
type Target interface {
	BTransport(addr uint32, data []byte, isRead bool)
}

// mapping is one address range routed to a target.
type mapping struct {
	base, size uint32
	target     Target
	name       string
}

// Bus routes global addresses to targets with global-to-local address
// translation (the interconnect of the paper's Fig. 1 VP).
type Bus struct {
	maps []mapping
}

// Map attaches a target at [base, base+size).
func (b *Bus) Map(name string, base, size uint32, t Target) {
	b.maps = append(b.maps, mapping{base: base, size: size, target: t, name: name})
}

// Route finds the mapping for addr, returning the target and the local
// address, or an error for unmapped addresses.
func (b *Bus) Route(addr uint32) (Target, uint32, error) {
	for i := range b.maps {
		m := &b.maps[i]
		if addr >= m.base && addr < m.base+m.size {
			return m.target, addr - m.base, nil
		}
	}
	return nil, 0, fmt.Errorf("sysc: no target mapped at %#x", addr)
}
