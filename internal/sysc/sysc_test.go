package sysc

import (
	"testing"
	"testing/quick"
)

func TestKernelOrdering(t *testing.T) {
	var k Kernel
	var order []int
	k.Schedule(30, func() { order = append(order, 3) })
	k.Schedule(10, func() { order = append(order, 1) })
	k.Schedule(20, func() { order = append(order, 2) })
	k.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order: %v", order)
	}
	if k.Now() != 30 {
		t.Errorf("now: %d", k.Now())
	}
}

func TestKernelFIFOWithinTimestamp(t *testing.T) {
	var k Kernel
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Schedule(5, func() { order = append(order, i) })
	}
	k.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("not FIFO at same timestamp: %v", order)
		}
	}
}

func TestAdvanceToPartial(t *testing.T) {
	var k Kernel
	fired := map[int]bool{}
	k.Schedule(10, func() { fired[10] = true })
	k.Schedule(50, func() { fired[50] = true })
	k.AdvanceTo(20)
	if !fired[10] || fired[50] {
		t.Errorf("fired: %v", fired)
	}
	if k.Now() != 20 {
		t.Errorf("now: %d", k.Now())
	}
	if !k.Pending() {
		t.Error("one event must remain pending")
	}
	if next, ok := k.NextEventTime(); !ok || next != 50 {
		t.Errorf("next: %v %v", next, ok)
	}
	k.AdvanceTo(100)
	if !fired[50] {
		t.Error("second event must fire")
	}
	if k.Pending() {
		t.Error("queue must be drained")
	}
}

func TestSelfReschedulingProcess(t *testing.T) {
	var k Kernel
	count := 0
	var proc func()
	proc = func() {
		count++
		if count < 5 {
			k.Schedule(10, proc)
		}
	}
	k.Schedule(10, proc)
	k.Run()
	if count != 5 {
		t.Errorf("count: %d", count)
	}
	if k.Now() != 50 {
		t.Errorf("now: %d", k.Now())
	}
}

func TestEventFanout(t *testing.T) {
	var k Kernel
	e := k.NewEvent()
	total := 0
	e.Sensitive(func() { total += 1 })
	e.Sensitive(func() { total += 100 })
	e.Notify(2)
	e.Notify(4) // second notification fires both again
	k.Run()
	if total != 202 {
		t.Errorf("total: %d", total)
	}
}

type recorder struct {
	lastAddr uint32
	lastRead bool
}

func (r *recorder) BTransport(addr uint32, data []byte, isRead bool) {
	r.lastAddr = addr
	r.lastRead = isRead
	if isRead {
		for i := range data {
			data[i] = byte(addr) + byte(i)
		}
	}
}

func TestBusGlobalToLocal(t *testing.T) {
	var bus Bus
	a := &recorder{}
	b := &recorder{}
	bus.Map("a", 0x1000, 0x100, a)
	bus.Map("b", 0x2000, 0x200, b)

	tgt, local, err := bus.Route(0x1010)
	if err != nil || tgt != Target(a) || local != 0x10 {
		t.Errorf("route a: %v %v %v", tgt, local, err)
	}
	tgt, local, err = bus.Route(0x21ff)
	if err != nil || tgt != Target(b) || local != 0x1ff {
		t.Errorf("route b: %v %v %v", tgt, local, err)
	}
	if _, _, err := bus.Route(0x1100); err == nil {
		t.Error("gap between ranges must not route")
	}
	// Transport through the routed target.
	buf := make([]byte, 4)
	tgt.BTransport(local, buf, true)
	if b.lastAddr != 0x1ff || !b.lastRead || buf[0] != byte(local) {
		t.Errorf("transport: %+v buf=%v", b, buf)
	}
}

// Property: events fire in nondecreasing time order regardless of the
// scheduling order.
func TestKernelMonotonicTime(t *testing.T) {
	f := func(delays []uint8) bool {
		if len(delays) == 0 {
			return true
		}
		var k Kernel
		var times []Time
		for _, d := range delays {
			d := Time(d)
			k.Schedule(d, func() { times = append(times, k.Now()) })
		}
		k.Run()
		for i := 1; i < len(times); i++ {
			if times[i] < times[i-1] {
				return false
			}
		}
		return len(times) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
