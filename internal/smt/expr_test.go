package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstFolding(t *testing.T) {
	b := NewBuilder()
	c := func(v uint64) *Expr { return b.Const(32, v) }
	cases := []struct {
		name string
		got  *Expr
		want uint64
	}{
		{"add", b.Add(c(3), c(4)), 7},
		{"add-wrap", b.Add(c(0xffffffff), c(1)), 0},
		{"sub", b.Sub(c(3), c(4)), 0xffffffff},
		{"mul", b.Mul(c(7), c(6)), 42},
		{"mul-wrap", b.Mul(c(0x80000000), c(2)), 0},
		{"udiv", b.UDiv(c(42), c(5)), 8},
		{"udiv0", b.UDiv(c(42), c(0)), 0xffffffff},
		{"urem", b.URem(c(42), c(5)), 2},
		{"urem0", b.URem(c(42), c(0)), 42},
		{"and", b.And(c(0xf0f0), c(0xff00)), 0xf000},
		{"or", b.Or(c(0xf0f0), c(0x0f0f)), 0xffff},
		{"xor", b.Xor(c(0xff), c(0x0f)), 0xf0},
		{"not", b.Not(c(0)), 0xffffffff},
		{"neg", b.Neg(c(1)), 0xffffffff},
		{"shl", b.Shl(c(1), c(31)), 0x80000000},
		{"shl-over", b.Shl(c(1), c(32)), 0},
		{"lshr", b.LShr(c(0x80000000), c(31)), 1},
		{"ashr", b.AShr(c(0x80000000), c(31)), 0xffffffff},
		{"ashr-over", b.AShr(c(0x80000000), c(99)), 0xffffffff},
	}
	for _, tc := range cases {
		if tc.got.Kind != KConst {
			t.Errorf("%s: not folded: %v", tc.name, tc.got)
			continue
		}
		if tc.got.Val != tc.want {
			t.Errorf("%s: got %#x want %#x", tc.name, tc.got.Val, tc.want)
		}
	}
}

func TestComparisonFolding(t *testing.T) {
	b := NewBuilder()
	c := func(v uint64) *Expr { return b.Const(32, v) }
	if !b.Ult(c(1), c(2)).IsTrue() {
		t.Error("1 < 2 unsigned")
	}
	if !b.Slt(c(0xffffffff), c(0)).IsTrue() {
		t.Error("-1 < 0 signed")
	}
	if b.Slt(c(0), c(0xffffffff)).IsTrue() {
		t.Error("0 < -1 signed must be false")
	}
	if !b.Sle(c(0x80000000), c(0x7fffffff)).IsTrue() {
		t.Error("INT_MIN <= INT_MAX")
	}
	if !b.Eq(c(5), c(5)).IsTrue() {
		t.Error("5 == 5")
	}
	if !b.Ne(c(5), c(6)).IsTrue() {
		t.Error("5 != 6")
	}
}

func TestInterning(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	y := b.Var(32, "y")
	if b.Add(x, y) != b.Add(x, y) {
		t.Error("identical expressions must intern to the same node")
	}
	if b.Var(32, "x") != x {
		t.Error("same-named variable must be reused")
	}
	// Add canonicalizes constants to the right, so these intern together.
	if b.Add(b.Const(32, 5), x) != b.Add(x, b.Const(32, 5)) {
		t.Error("add constant canonicalization")
	}
}

func TestIdentitySimplifications(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	zero := b.Const(32, 0)
	ones := b.Const(32, 0xffffffff)
	if b.Add(x, zero) != x {
		t.Error("x+0 = x")
	}
	if b.Sub(x, x).Val != 0 || !b.Sub(x, x).IsConst() {
		t.Error("x-x = 0")
	}
	if b.Mul(x, b.Const(32, 1)) != x {
		t.Error("x*1 = x")
	}
	if !b.Mul(x, zero).IsConst() {
		t.Error("x*0 = 0")
	}
	if b.And(x, ones) != x {
		t.Error("x&~0 = x")
	}
	if b.Or(x, zero) != x {
		t.Error("x|0 = x")
	}
	if b.Xor(x, x).Val != 0 || !b.Xor(x, x).IsConst() {
		t.Error("x^x = 0")
	}
	if b.Not(b.Not(x)) != x {
		t.Error("~~x = x")
	}
	if b.Neg(b.Neg(x)) != x {
		t.Error("--x = x")
	}
	if !b.Eq(x, x).IsTrue() {
		t.Error("x==x = true")
	}
	if !b.Ule(zero, x).IsTrue() {
		t.Error("0<=x = true")
	}
	if !b.Ult(x, zero).IsFalse() {
		t.Error("x<0 = false")
	}
}

func TestAddConstantChainFolds(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	e := b.Add(b.Add(x, b.Const(32, 3)), b.Const(32, 4))
	want := b.Add(x, b.Const(32, 7))
	if e != want {
		t.Errorf("(x+3)+4 should fold to x+7, got %v", e)
	}
	e2 := b.Sub(b.Add(x, b.Const(32, 3)), b.Const(32, 3))
	if e2 != x {
		t.Errorf("(x+3)-3 should fold to x, got %v", e2)
	}
}

func TestExtractConcat(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	// Byte round trip: storing a word byte-wise then loading should give
	// back the original expression (the memory system depends on this to
	// keep expressions small).
	b0 := b.Extract(x, 7, 0)
	b1 := b.Extract(x, 15, 8)
	b2 := b.Extract(x, 23, 16)
	b3 := b.Extract(x, 31, 24)
	whole := b.Concat(b.Concat(b.Concat(b3, b2), b1), b0)
	if whole != x {
		t.Errorf("byte-wise round trip should re-fuse to x, got %v", whole)
	}
	// Extract of constant.
	c := b.Extract(b.Const(32, 0xdeadbeef), 15, 8)
	if !c.IsConst() || c.Val != 0xbe || c.Width != 8 {
		t.Errorf("extract const: got %v", c)
	}
	// Nested extract.
	e := b.Extract(b.Extract(x, 23, 8), 7, 0)
	want := b.Extract(x, 15, 8)
	if e != want {
		t.Errorf("nested extract: got %v want %v", e, want)
	}
	// Extract of zext regions.
	z := b.ZExt(b.Var(8, "y"), 32)
	hi := b.Extract(z, 31, 8)
	if !hi.IsConst() || hi.Val != 0 {
		t.Errorf("extract of zext padding must be 0, got %v", hi)
	}
}

func TestIteSimplifications(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	y := b.Var(32, "y")
	c := b.Ult(x, y)
	if b.Ite(b.Bool(true), x, y) != x {
		t.Error("ite(true,x,y) = x")
	}
	if b.Ite(b.Bool(false), x, y) != y {
		t.Error("ite(false,x,y) = y")
	}
	if b.Ite(c, x, x) != x {
		t.Error("ite(c,x,x) = x")
	}
	if b.Ite(c, b.Bool(true), b.Bool(false)) != c {
		t.Error("ite(c,1,0) = c")
	}
	if b.Ite(c, b.Bool(false), b.Bool(true)) != b.Not(c) {
		t.Error("ite(c,0,1) = !c")
	}
	if b.Ite(b.Not(c), x, y) != b.Ite(c, y, x) {
		t.Error("ite(!c,x,y) = ite(c,y,x)")
	}
}

func TestVarsCollection(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	y := b.Var(32, "y")
	e := b.Add(b.Mul(x, y), x)
	vars := e.Vars(nil, map[*Expr]bool{})
	if len(vars) != 2 {
		t.Errorf("expected 2 vars, got %v", vars)
	}
}

func TestWidthPanics(t *testing.T) {
	b := NewBuilder()
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("mixed add", func() { b.Add(b.Const(8, 1), b.Const(32, 1)) })
	mustPanic("const width 0", func() { b.Const(0, 1) })
	mustPanic("const width 65", func() { b.Const(65, 1) })
	mustPanic("extract oob", func() { b.Extract(b.Var(8, "q"), 8, 0) })
	mustPanic("zext narrow", func() { b.ZExt(b.Const(32, 1), 8) })
	mustPanic("ite wide cond", func() { b.Ite(b.Const(32, 1), b.Const(8, 0), b.Const(8, 0)) })
	mustPanic("var redeclared", func() { b.Var(32, "q2"); b.Var(8, "q2") })
}

// TestEvalMatchesFold: for random constant operands, building the
// expression (which folds) and evaluating the unfolded form must agree.
func TestEvalMatchesFold(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	y := b.Var(32, "y")
	ops := []func(a, c *Expr) *Expr{
		b.Add, b.Sub, b.Mul, b.UDiv, b.URem, b.And, b.Or, b.Xor,
		b.Shl, b.LShr, b.AShr, b.Eq, b.Ult, b.Ule, b.Slt, b.Sle,
	}
	f := func(av, cv uint32, opIdx uint8) bool {
		op := ops[int(opIdx)%len(ops)]
		folded := op(b.Const(32, uint64(av)), b.Const(32, uint64(cv)))
		symbolic := op(x, y)
		env := Assignment{0: uint64(av), 1: uint64(cv)}
		return Eval(symbolic, env) == folded.Val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestEvalRandomDags: random expression DAGs evaluate deterministically
// and within width bounds.
func TestEvalRandomDags(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	b := NewBuilder()
	vars := []*Expr{b.Var(32, "a"), b.Var(32, "b"), b.Var(32, "c")}
	for iter := 0; iter < 200; iter++ {
		e := randomExpr(rng, b, vars, 4)
		env := Assignment{0: uint64(rng.Uint32()), 1: uint64(rng.Uint32()), 2: uint64(rng.Uint32())}
		v := Eval(e, env)
		if v&^mask(e.Width) != 0 {
			t.Fatalf("eval out of width: %#x width %d", v, e.Width)
		}
		if Eval(e, env) != v {
			t.Fatal("eval not deterministic")
		}
	}
}

// randomExpr builds a random 32-bit expression of bounded depth.
func randomExpr(rng *rand.Rand, b *Builder, vars []*Expr, depth int) *Expr {
	if depth == 0 || rng.Intn(4) == 0 {
		if rng.Intn(2) == 0 {
			return vars[rng.Intn(len(vars))]
		}
		return b.Const(32, uint64(rng.Uint32()))
	}
	l := randomExpr(rng, b, vars, depth-1)
	r := randomExpr(rng, b, vars, depth-1)
	switch rng.Intn(12) {
	case 0:
		return b.Add(l, r)
	case 1:
		return b.Sub(l, r)
	case 2:
		return b.Mul(l, r)
	case 3:
		return b.And(l, r)
	case 4:
		return b.Or(l, r)
	case 5:
		return b.Xor(l, r)
	case 6:
		return b.Shl(l, b.Const(32, uint64(rng.Intn(40))))
	case 7:
		return b.LShr(l, b.Const(32, uint64(rng.Intn(40))))
	case 8:
		return b.AShr(l, b.Const(32, uint64(rng.Intn(40))))
	case 9:
		return b.Ite(b.Ult(l, r), l, r)
	case 10:
		return b.ZExt(b.Extract(l, 7, 0), 32)
	default:
		return b.SExt(b.Extract(l, 15, 0), 32)
	}
}

func TestStringRendering(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	e := b.Add(x, b.Const(32, 5))
	if got := e.String(); got != "(bvadd v0 #x00000005)" {
		t.Errorf("String: %q", got)
	}
	if b.Bool(true).String() != "#x1" {
		t.Errorf("bool true: %q", b.Bool(true).String())
	}
}

func TestSizeCounting(t *testing.T) {
	b := NewBuilder()
	x := b.Var(32, "x")
	e := b.Add(b.Mul(x, x), b.Mul(x, x)) // shared subtree
	// nodes: x, mul(x,x), add = 3 (mul interned once)
	if e.Size() != 3 {
		t.Errorf("Size: got %d want 3", e.Size())
	}
}
