package smt

// This file holds the state-merging primitives the bounded-model-checking
// backend builds on: n-ary guard combinators and a symbolic byte-array
// overlay. They live in smt (not bmc) because they are generic over any
// guarded-update encoding: a value per guard, merged with ite at join
// points, over a concrete background.

// AndAll builds the width-1 conjunction of xs, folding constants. An
// empty slice is true.
func (b *Builder) AndAll(xs []*Expr) *Expr {
	out := b.Bool(true)
	for _, x := range xs {
		if x.IsFalse() {
			return x
		}
		out = b.And(out, x)
	}
	return out
}

// OrAll builds the width-1 disjunction of xs, folding constants. An
// empty slice is false.
func (b *Builder) OrAll(xs []*Expr) *Expr {
	out := b.Bool(false)
	for _, x := range xs {
		if x.IsTrue() {
			return x
		}
		out = b.Or(out, x)
	}
	return out
}

// Mem is a symbolic byte array: a sparse overlay of symbolic byte
// expressions over an immutable concrete-ish background (Base). It is
// the memory encoding of one merged symbolic state: loads read through
// to Base for untouched addresses, stores go to the overlay, and two
// states that reach the same program point merge their overlays with
// ite on the deciding guard instead of forking.
type Mem struct {
	// Base supplies the background byte at addr (width-8, possibly
	// symbolic). It must be pure: same addr, same expression.
	Base func(addr uint32) *Expr
	over map[uint32]*Expr
}

// NewMem creates an empty overlay over base.
func NewMem(base func(addr uint32) *Expr) *Mem {
	return &Mem{Base: base, over: map[uint32]*Expr{}}
}

// Load reads the byte at addr: the overlay if written, else Base.
func (m *Mem) Load(addr uint32) *Expr {
	if e, ok := m.over[addr]; ok {
		return e
	}
	return m.Base(addr)
}

// Store writes the width-8 expression v at addr. Storing exactly the
// background byte erases the overlay entry (keeps merged states small
// after memset-style re-initialization).
func (m *Mem) Store(addr uint32, v *Expr) {
	if v.Width != 8 {
		panic("smt: Mem.Store wants a width-8 byte")
	}
	if m.Base(addr) == v {
		delete(m.over, addr)
		return
	}
	m.over[addr] = v
}

// Clone copies the overlay; Base is shared.
func (m *Mem) Clone() *Mem {
	n := &Mem{Base: m.Base, over: make(map[uint32]*Expr, len(m.over))}
	for a, e := range m.over {
		n.over[a] = e
	}
	return n
}

// Overlay returns the number of overlaid bytes.
func (m *Mem) Overlay() int { return len(m.over) }

// Merge folds other into m as ite(g, m, other) per byte: under guard g
// the receiver's contents win, otherwise other's. Bytes equal in both
// (hash-consing makes that a pointer comparison) merge to themselves.
func (m *Mem) Merge(b *Builder, g *Expr, other *Mem) {
	for a, e := range m.over {
		oe := other.Load(a)
		if e != oe {
			m.over[a] = b.Ite(g, e, oe)
		}
	}
	for a, oe := range other.over {
		if _, ok := m.over[a]; ok {
			continue // handled above
		}
		e := m.Base(a)
		if e != oe {
			m.over[a] = b.Ite(g, e, oe)
		}
	}
}
