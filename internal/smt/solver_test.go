package smt

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func checkSat(t *testing.T, s *Solver, conds ...*Expr) Assignment {
	t.Helper()
	sat, model, unknown := s.Check(conds...)
	if unknown {
		t.Fatal("solver budget exhausted")
	}
	if !sat {
		t.Fatal("expected sat")
	}
	// Validate the model against the original expressions.
	for _, c := range conds {
		if Eval(c, model) != 1 {
			t.Fatalf("model does not satisfy %v (model %v)", c, model)
		}
	}
	return model
}

func checkUnsat(t *testing.T, s *Solver, conds ...*Expr) {
	t.Helper()
	sat, _, unknown := s.Check(conds...)
	if unknown {
		t.Fatal("solver budget exhausted")
	}
	if sat {
		t.Fatal("expected unsat")
	}
}

func TestSolverBasic(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")

	checkSat(t, s, b.Eq(x, b.Const(32, 42)))
	checkUnsat(t, s, b.Eq(x, b.Const(32, 1)), b.Eq(x, b.Const(32, 2)))
	m := checkSat(t, s, b.Eq(b.Add(x, b.Const(32, 1)), b.Const(32, 0)))
	if m[0] != 0xffffffff {
		t.Errorf("x+1==0 needs x=0xffffffff, got %#x", m[0])
	}
}

func TestSolverArithmetic(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")
	y := b.Var(32, "y")

	// x*y == 221, x > 1, y > 1, x <= y: 13*17.
	m := checkSat(t, s,
		b.Eq(b.Mul(x, y), b.Const(32, 221)),
		b.Ult(b.Const(32, 1), x),
		b.Ult(b.Const(32, 1), y),
		b.Ule(x, y),
		b.Ult(x, b.Const(32, 100)),
		b.Ult(y, b.Const(32, 100)),
	)
	if m[0]*m[1] != 221 {
		t.Errorf("factorization model wrong: %d * %d", m[0], m[1])
	}

	// Unsigned overflow: no x with x+1 < x unless x is max... actually
	// x+1 < x (unsigned, wrapped) holds exactly for x = 0xffffffff.
	m2 := checkSat(t, s, b.Ult(b.Add(x, b.Const(32, 1)), x))
	if m2[0] != 0xffffffff {
		t.Errorf("overflow witness: got %#x", m2[0])
	}
}

func TestSolverDivision(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")

	m := checkSat(t, s,
		b.Eq(b.UDiv(x, b.Const(32, 7)), b.Const(32, 6)),
		b.Eq(b.URem(x, b.Const(32, 7)), b.Const(32, 3)),
	)
	if m[0] != 45 {
		t.Errorf("x/7==6 && x%%7==3: got %d want 45", m[0])
	}
	// Division by zero: q must be all-ones.
	checkUnsat(t, s, b.Ne(b.UDiv(x, b.Const(32, 0)), b.Const(32, 0xffffffff)))
	// Remainder by zero: r == a.
	checkUnsat(t, s, b.Ne(b.URem(x, b.Const(32, 0)), x))
}

func TestSolverShifts(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")
	sh := b.Var(32, "sh")

	m := checkSat(t, s,
		b.Eq(b.Shl(b.Const(32, 1), sh), b.Const(32, 0x1000)),
		b.Ult(sh, b.Const(32, 32)),
	)
	if m[b.varID("sh")] != 12 {
		t.Errorf("1<<sh == 0x1000: sh=%d want 12", m[b.varID("sh")])
	}
	// Symbolic shift >= width gives zero.
	checkUnsat(t, s,
		b.Uge(sh, b.Const(32, 32)),
		b.Ne(b.Shl(x, sh), b.Const(32, 0)),
	)
	// Arithmetic shift keeps the sign.
	checkUnsat(t, s,
		b.Slt(x, b.Const(32, 0)),
		b.Sge(b.AShr(x, b.Const(32, 31)), b.Const(32, 0)),
	)
}

// varID is a test helper to find a variable id by name.
func (b *Builder) varID(name string) int {
	for id, n := range b.varNames {
		if n == name {
			return id
		}
	}
	return -1
}

func TestSolverSignedComparisons(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")

	// Signed: x < 0 and x > 100 unsigned is satisfiable (negative values
	// are large unsigned).
	checkSat(t, s, b.Slt(x, b.Const(32, 0)), b.Ugt(x, b.Const(32, 100)))
	// x < 0 signed and x < 100 unsigned is unsat for 32-bit.
	checkUnsat(t, s, b.Slt(x, b.Const(32, 0)), b.Ult(x, b.Const(32, 100)))
	// INT_MIN is <= everything signed.
	checkUnsat(t, s, b.Slt(x, b.Const(32, 0x80000000)))
}

func TestSolverIteAndExtract(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")

	// ite(x<10, x+1, 0) == 5  =>  x == 4
	cond := b.Ult(x, b.Const(32, 10))
	e := b.Ite(cond, b.Add(x, b.Const(32, 1)), b.Const(32, 0))
	m := checkSat(t, s, b.Eq(e, b.Const(32, 5)))
	if m[0] != 4 {
		t.Errorf("ite equation: x=%d want 4", m[0])
	}

	// Low byte must be 0xAB and the word must be < 0x200: x = 0x1AB.
	m2 := checkSat(t, s,
		b.Eq(b.Extract(x, 7, 0), b.Const(8, 0xab)),
		b.Ult(x, b.Const(32, 0x200)),
		b.Uge(x, b.Const(32, 0x100)),
	)
	if m2[0] != 0x1ab {
		t.Errorf("extract equation: x=%#x want 0x1ab", m2[0])
	}
}

func TestSolverConcatSextZext(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	lo := b.Var(8, "lo")
	hi := b.Var(8, "hi")

	m := checkSat(t, s, b.Eq(b.Concat(hi, lo), b.Const(16, 0xbeef)))
	if m[b.varID("hi")] != 0xbe || m[b.varID("lo")] != 0xef {
		t.Errorf("concat: hi=%#x lo=%#x", m[b.varID("hi")], m[b.varID("lo")])
	}
	// sext(0x80,32) == 0xffffff80
	v := b.Var(8, "v")
	m2 := checkSat(t, s, b.Eq(b.SExt(v, 32), b.Const(32, 0xffffff80)))
	if m2[b.varID("v")] != 0x80 {
		t.Errorf("sext: v=%#x", m2[b.varID("v")])
	}
	// zext never produces a value >= 256.
	checkUnsat(t, s, b.Uge(b.ZExt(v, 32), b.Const(32, 256)))
}

func TestSolverIncrementalPathCondition(t *testing.T) {
	// Emulates the concolic usage pattern: a growing path condition with
	// one flipped branch per query.
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")

	epc := []*Expr{}
	branch := func(c *Expr) {
		// Query the negation under the current EPC, then extend the EPC.
		neg := append(append([]*Expr{}, epc...), b.Not(c))
		sat, model, _ := s.Check(neg...)
		if sat {
			for _, pc := range neg {
				if Eval(pc, model) != 1 {
					t.Fatalf("model invalid for %v", pc)
				}
			}
		}
		epc = append(epc, c)
	}
	branch(b.Ult(x, b.Const(32, 1000)))
	branch(b.Uge(x, b.Const(32, 10)))
	branch(b.Eq(b.URem(x, b.Const(32, 3)), b.Const(32, 0)))
	branch(b.Ne(x, b.Const(32, 12)))

	m := checkSat(t, s, epc...)
	xv := m[0]
	if xv >= 1000 || xv < 10 || xv%3 != 0 || xv == 12 {
		t.Errorf("EPC model wrong: %d", xv)
	}
	if s.Stats.Queries == 0 || s.Stats.SolverTime <= 0 {
		t.Error("stats not collected")
	}
}

func TestSolverBudget(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	s.MaxConflictsPerQuery = 1
	x := b.Var(32, "x")
	y := b.Var(32, "y")
	z := b.Var(32, "z")
	// A hard-ish query (multiplicative) to burn conflicts.
	_, _, unknown := s.Check(
		b.Eq(b.Mul(x, y), b.Mul(y, z)),
		b.Ne(x, z),
		b.Ne(y, b.Const(32, 0)),
		b.Eq(b.Mul(x, x), b.Add(b.Mul(z, z), b.Const(32, 1))),
	)
	// Either it solved instantly or it reported unknown — both are
	// acceptable; what matters is it did not loop forever and the flag
	// plumbed through.
	_ = unknown
}

// Property: for random constraints "x op c == r" built from a concrete
// witness, the solver must find some satisfying model (soundness +
// completeness on easy instances) and the model must evaluate true.
func TestSolverPropertyWitness(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")
	y := b.Var(32, "y")

	f := func(xv, yv uint32, opIdx uint8) bool {
		var e *Expr
		switch opIdx % 6 {
		case 0:
			e = b.Add(x, y)
		case 1:
			e = b.Sub(x, y)
		case 2:
			e = b.Xor(x, y)
		case 3:
			e = b.And(x, y)
		case 4:
			e = b.Or(x, y)
		default:
			e = b.Mul(x, b.Const(32, uint64(yv)))
		}
		env := Assignment{0: uint64(xv), 1: uint64(yv)}
		r := Eval(e, env)
		cond := b.Eq(e, b.Const(32, r))
		sat, model, unknown := s.Check(cond)
		if unknown || !sat {
			return false
		}
		return Eval(cond, model) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: blaster and evaluator agree. For a random expression e and a
// random environment, asserting e == Eval(e, env) with vars pinned to env
// must be satisfiable; asserting e != that value with vars pinned must be
// unsatisfiable.
func TestBlastEvalAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 30; iter++ {
		b := NewBuilder()
		s := NewSolver(b)
		vars := []*Expr{b.Var(32, "a"), b.Var(32, "b")}
		e := randomExpr(rng, b, vars, 3)
		env := Assignment{0: uint64(rng.Uint32()), 1: uint64(rng.Uint32())}
		want := Eval(e, env)
		pin := []*Expr{
			b.Eq(vars[0], b.Const(32, env[0])),
			b.Eq(vars[1], b.Const(32, env[1])),
		}
		sat, _, unknown := s.Check(append(pin, b.Eq(e, b.Const(e.Width, want)))...)
		if unknown {
			t.Fatal("unexpected unknown")
		}
		if !sat {
			t.Fatalf("iter %d: e == eval(e) under pinned vars must be sat; e=%v env=%v want=%#x", iter, e, env, want)
		}
		sat, _, _ = s.Check(append(pin, b.Ne(e, b.Const(e.Width, want)))...)
		if sat {
			t.Fatalf("iter %d: e != eval(e) under pinned vars must be unsat; e=%v", iter, e)
		}
	}
}

func TestSatSolverDirect(t *testing.T) {
	s := NewSat()
	a, b, c := s.NewVar(), s.NewVar(), s.NewVar()
	// (a | b) & (!a | c) & (!b | c) & !c  => unsat... check: !c forces
	// c=false; then !a and !b; then a|b fails. Unsat.
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(c, false))
	s.AddClause(MkLit(b, true), MkLit(c, false))
	s.AddClause(MkLit(c, true))
	if s.Solve() != Unsat {
		t.Error("expected unsat")
	}
}

func TestSatAssumptionsRetractable(t *testing.T) {
	s := NewSat()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(MkLit(a, false), MkLit(b, false)) // a | b
	if s.Solve(MkLit(a, true), MkLit(b, true)) != Unsat {
		t.Error("a|b under !a,!b must be unsat")
	}
	// Retracting the assumptions must leave the formula satisfiable.
	if s.Solve() != SatResult {
		t.Error("formula must remain sat after assumptions retracted")
	}
	if s.Solve(MkLit(a, true)) != SatResult {
		t.Error("a|b under !a must be sat (b)")
	}
}

func TestSatPigeonhole(t *testing.T) {
	// PHP(4,3): 4 pigeons, 3 holes — classic small unsat instance that
	// requires real conflict analysis.
	s := NewSat()
	v := make([][]int, 4)
	for p := range v {
		v[p] = make([]int, 3)
		for h := range v[p] {
			v[p][h] = s.NewVar()
		}
	}
	for p := 0; p < 4; p++ {
		s.AddClause(MkLit(v[p][0], false), MkLit(v[p][1], false), MkLit(v[p][2], false))
	}
	for h := 0; h < 3; h++ {
		for p1 := 0; p1 < 4; p1++ {
			for p2 := p1 + 1; p2 < 4; p2++ {
				s.AddClause(MkLit(v[p1][h], true), MkLit(v[p2][h], true))
			}
		}
	}
	if s.Solve() != Unsat {
		t.Error("PHP(4,3) must be unsat")
	}
	if s.Conflict == 0 {
		t.Error("expected at least one conflict on PHP")
	}
}

func TestSatRandom3SATSatisfiable(t *testing.T) {
	// Plant a solution and generate clauses consistent with it; solver
	// must find some model satisfying all clauses.
	rng := rand.New(rand.NewSource(5))
	for iter := 0; iter < 20; iter++ {
		s := NewSat()
		n := 30
		sol := make([]bool, n)
		for i := 0; i < n; i++ {
			s.NewVar()
			sol[i] = rng.Intn(2) == 0
		}
		var clauses [][]Lit
		for c := 0; c < 120; c++ {
			var cl []Lit
			okCl := false
			for k := 0; k < 3; k++ {
				v := rng.Intn(n)
				neg := rng.Intn(2) == 0
				cl = append(cl, MkLit(v, neg))
				if neg != sol[v] {
					okCl = true
				}
			}
			if !okCl {
				// Flip one literal to keep the planted solution valid.
				cl[0] = cl[0].Flip()
			}
			clauses = append(clauses, cl)
			s.AddClause(cl...)
		}
		if s.Solve() != SatResult {
			t.Fatalf("iter %d: planted instance must be sat", iter)
		}
		for ci, cl := range clauses {
			ok := false
			for _, l := range cl {
				val := s.ModelValue(l.Var())
				if l.Neg() {
					val = !val
				}
				if val {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("iter %d: model violates clause %d", iter, ci)
			}
		}
	}
}

func TestBuilderValueHelper(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(16, "px")
	m := checkSat(t, s, b.Eq(x, b.Const(16, 0x1234)))
	if b.Value(m, "px") != 0x1234 {
		t.Errorf("Value: %#x", b.Value(m, "px"))
	}
	if b.Value(m, "nonexistent") != 0 {
		t.Error("Value of unknown var must be 0")
	}
}

// TestSolver64BitMulPath: MULH-style constraints build 64-bit
// expressions (sext to 64, multiply, extract the high word); the blaster
// must handle the full width.
func TestSolver64BitMulPath(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")

	// high32(sext(x) * sext(3)) == 0xffffffff means x is negative
	// (small negative * 3 keeps the high word all-ones).
	p := b.Mul(b.SExt(x, 64), b.SExt(b.Const(32, 3), 64))
	hi := b.Extract(p, 63, 32)
	m := checkSat(t, s,
		b.Eq(hi, b.Const(32, 0xffffffff)),
		b.Ult(b.Const(32, 0x80000000), x), // x strictly negative
	)
	if int32(m[0]) >= 0 {
		t.Errorf("x = %#x should be negative", m[0])
	}
	// Unsigned high word of x*x == 0 forces x < 2^16.
	p2 := b.Mul(b.ZExt(x, 64), b.ZExt(x, 64))
	hi2 := b.Extract(p2, 63, 32)
	checkUnsat(t, s,
		b.Eq(hi2, b.Const(32, 0)),
		b.Uge(x, b.Const(32, 0x10000)),
	)
}

// TestSolverStatsAccumulate: statistics must be cumulative across
// queries.
func TestSolverStatsAccumulate(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	x := b.Var(32, "x")
	for i := 0; i < 5; i++ {
		s.Check(b.Eq(x, b.Const(32, uint64(i))))
	}
	if s.Stats.Queries != 5 {
		t.Errorf("queries: %d", s.Stats.Queries)
	}
	if s.Stats.SatVars == 0 {
		t.Error("sat vars should be recorded")
	}
}

// TestSatBudgetIsPerQuery: the conflict budget bounds one Solve call,
// not the solver's lifetime. A solver that has already accumulated many
// conflicts from earlier queries must still answer a query whose own
// conflict count fits the budget (regression: the budget used to be
// compared against the cumulative counter, so every query after the
// first ones spuriously returned Unknown).
func TestSatBudgetIsPerQuery(t *testing.T) {
	s := NewSat()
	a := s.NewVar()
	b := s.NewVar()
	// UNSAT over {a,b}: solving requires at least one conflict.
	s.AddClause(MkLit(a, false), MkLit(b, false))
	s.AddClause(MkLit(a, false), MkLit(b, true))
	s.AddClause(MkLit(a, true), MkLit(b, false))
	s.AddClause(MkLit(a, true), MkLit(b, true))

	// Simulate a long-lived solver: many conflicts already accumulated.
	s.Conflict = 1_000_000
	s.Budget = 100
	if res := s.Solve(); res != Unsat {
		t.Fatalf("got %v, want Unsat: per-query budget must ignore conflicts from earlier queries", res)
	}
}

// hardFactorQuery builds "x * y == p*q && x > 1 && y > 1" over fresh
// 16-bit variables — the solver has to search for the factors, which
// reliably costs conflicts.
func hardFactorQuery(b *Builder, xn, yn string, p, q uint64) []*Expr {
	x := b.Var(16, xn)
	y := b.Var(16, yn)
	one := b.Const(16, 1)
	return []*Expr{
		b.Eq(b.Mul(x, y), b.Const(16, p*q)),
		b.Ugt(x, one),
		b.Ugt(y, one),
	}
}

// TestSolverBudgetNotCumulative runs two hard queries on one solver
// under a per-query conflict budget sized so that each query fits but
// their sum does not: the second query must not be starved.
func TestSolverBudgetNotCumulative(t *testing.T) {
	// Measure each query's conflict cost on an unbudgeted solver (the
	// solver is deterministic, so the budgeted run repeats it exactly).
	b := NewBuilder()
	s := NewSolver(b)
	q1 := hardFactorQuery(b, "bx", "by", 251, 241)
	q2 := hardFactorQuery(b, "bz", "bw", 239, 233)
	checkSat(t, s, q1...)
	c1 := s.Stats.Conflicts
	checkSat(t, s, q2...)
	c2 := s.Stats.Conflicts - c1
	if c1 < 2 || c2 < 2 {
		t.Fatalf("queries too easy to exercise the budget (c1=%d c2=%d); harden them", c1, c2)
	}

	budget := c1
	if c2 > budget {
		budget = c2
	}
	budget++ // each query fits ...
	if c1+c2 <= budget {
		t.Fatalf("budget %d not exceeded cumulatively (c1=%d c2=%d); the test would be vacuous", budget, c1, c2)
	}

	b2 := NewBuilder()
	s2 := NewSolver(b2)
	s2.MaxConflictsPerQuery = budget
	checkSat(t, s2, hardFactorQuery(b2, "bx", "by", 251, 241)...)
	// The regression: with a cumulative comparison the second query
	// crosses the budget and returns unknown.
	checkSat(t, s2, hardFactorQuery(b2, "bz", "bw", 239, 233)...)
}

// TestSolverBudgetStillBoundsQueries: a query genuinely harder than the
// budget must still return unknown (the fix must not disable limiting).
func TestSolverBudgetStillBoundsQueries(t *testing.T) {
	b := NewBuilder()
	s := NewSolver(b)
	s.MaxConflictsPerQuery = 1
	_, _, unknown := s.Check(hardFactorQuery(b, "hx", "hy", 251, 241)...)
	if !unknown {
		t.Fatal("budget of 1 conflict should exhaust on a factoring query")
	}
}
