package smt

import (
	"time"

	"rvcte/internal/obs"
)

// Stats accumulates query statistics, mirroring the "stime" and "#queries"
// columns of the paper's Table 1 and Table 2.
type Stats struct {
	Queries    int           // number of Check calls
	SolverTime time.Duration // total wall time spent inside Check
	Conflicts  int           // SAT conflicts across all queries
	SatVars    int           // SAT variables allocated
	SatProps   int64         // unit propagations
}

// Solver answers satisfiability queries over expressions from one Builder.
// Blasted CNF structure is retained between queries; assertions are passed
// as SAT assumptions, so the common concolic pattern — many queries that
// share a long path-condition prefix — is incremental.
type Solver struct {
	bld   *Builder
	sat   *Sat
	bl    *blaster
	Stats Stats

	// MaxConflictsPerQuery bounds each query; 0 means unlimited. When a
	// query exceeds the budget Check returns unknown=true.
	MaxConflictsPerQuery int

	// Observability handles (SetObs). All are nil-safe: an unwired
	// solver pays one nil test per query.
	obsQueries *obs.Counter
	obsSat     *obs.Counter
	obsUnsat   *obs.Counter
	obsUnknown *obs.Counter
	obsTimeNS  *obs.Counter
	obsLatency *obs.Histogram
	tracer     *obs.Tracer
}

// SetObs wires the solver into an observability bundle: per-query
// counters under "smt.*", a query-latency histogram (microseconds), and
// per-query trace events when o carries a tracer. Safe with a nil o.
func (s *Solver) SetObs(o *obs.Obs) {
	if o == nil {
		return
	}
	m := o.Registry()
	s.obsQueries = m.Counter("smt.queries")
	s.obsSat = m.Counter("smt.sat")
	s.obsUnsat = m.Counter("smt.unsat")
	s.obsUnknown = m.Counter("smt.unknown")
	s.obsTimeNS = m.Counter("smt.solver_ns")
	s.obsLatency = m.Histogram("smt.query_us", obs.LatencyBoundsUS)
	s.tracer = o.Trace()
}

// NewSolver creates a solver bound to the builder b.
func NewSolver(b *Builder) *Solver {
	sat := NewSat()
	return &Solver{bld: b, sat: sat, bl: newBlaster(b, sat)}
}

// Check determines whether the conjunction of conds is satisfiable. Each
// cond must have width 1. On sat, model assigns every variable blasted so
// far (variables not constrained get zero). unknown reports budget
// exhaustion (callers treat it as unsat-for-now during exploration).
func (s *Solver) Check(conds ...*Expr) (sat bool, model Assignment, unknown bool) {
	start := time.Now()
	defer func() {
		dur := time.Since(start)
		s.Stats.Queries++
		s.Stats.SolverTime += dur
		s.Stats.Conflicts = s.sat.Conflict
		s.Stats.SatVars = s.sat.NumVars()
		s.Stats.SatProps = s.sat.Props
		s.obsQueries.Inc()
		s.obsTimeNS.Add(int64(dur))
		s.obsLatency.ObserveDuration(dur)
		result := "unsat"
		switch {
		case sat:
			result = "sat"
			s.obsSat.Inc()
		case unknown:
			result = "unknown"
			s.obsUnknown.Inc()
		default:
			s.obsUnsat.Inc()
		}
		if s.tracer != nil {
			s.tracer.Emit(obs.Event{Ev: obs.EvSatQuery, DurUS: dur.Microseconds(),
				N: int64(len(conds)), Result: result})
		}
	}()

	assumptions := make([]Lit, 0, len(conds))
	for _, c := range conds {
		if c.Width != 1 {
			panic("smt: Check condition must have width 1")
		}
		if c.IsFalse() {
			return false, nil, false
		}
		if c.IsTrue() {
			continue
		}
		assumptions = append(assumptions, s.bl.blastBool(c))
	}
	s.sat.Budget = s.MaxConflictsPerQuery
	res := s.sat.solveKeep(assumptions...)
	if res != SatResult {
		s.sat.cancelUntil(0)
		if res == Unknown {
			return false, nil, true
		}
		return false, nil, false
	}
	model = Assignment{}
	for id, bits := range s.bl.varBits {
		var v uint64
		for i, l := range bits {
			bv := s.sat.ModelValue(l.Var())
			if l.Neg() {
				bv = !bv
			}
			if bv {
				v |= 1 << i
			}
		}
		model[id] = v
	}
	s.sat.cancelUntil(0)
	return true, model, false
}

// Value returns the model value of the named variable, defaulting to 0
// when the variable is absent from the model or unknown to the builder.
func (b *Builder) Value(model Assignment, name string) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, n := range b.varNames {
		if n == name {
			return model[id] & mask(b.varWidth[id])
		}
	}
	return 0
}
