package smt

// CDCL SAT solver with two-watched-literal propagation, VSIDS-style
// activity-based decision heuristics, first-UIP clause learning, phase
// saving and geometric restarts. This is the engine underneath the
// bit-blaster; it plays the role of MiniSat inside STP.

// Lit is a literal: variable v is encoded as 2v (positive) / 2v+1
// (negative). Variables are numbered from 0.
type Lit int32

// MkLit builds a literal for variable v with the given sign (neg == true
// means the negated literal).
func MkLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the variable of l.
func (l Lit) Var() int { return int(l >> 1) }

// Neg reports whether l is a negated literal.
func (l Lit) Neg() bool { return l&1 == 1 }

// Flip returns the complement literal.
func (l Lit) Flip() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = 0
	lTrue  lbool = 1
	lFalse lbool = -1
)

type clause struct {
	lits     []Lit
	learnt   bool
	activity float64
}

type watcher struct {
	c       *clause
	blocker Lit // a literal of c; if true, the clause is satisfied
}

// Sat is the CDCL solver instance. The zero value is not usable; create
// with NewSat.
type Sat struct {
	clauses []*clause
	learnts []*clause
	watches [][]watcher // indexed by literal

	assigns  []lbool // indexed by variable
	phase    []bool  // saved phases
	level    []int32 // decision level per variable
	reason   []*clause
	trail    []Lit
	trailLim []int // decision-level boundaries in trail
	qhead    int

	activity []float64
	varInc   float64
	order    *varHeap

	seen     []bool // scratch for conflict analysis
	claInc   float64
	ok       bool // false once UNSAT at level 0
	Conflict int  // number of conflicts (statistics)
	Props    int64

	// Budget limits an individual Solve call; <= 0 means unlimited.
	// When exceeded, Solve returns Unknown.
	Budget int
}

// SolveResult is the outcome of a Solve call.
type SolveResult int8

const (
	Unsat SolveResult = iota
	SatResult
	Unknown
)

// NewSat creates an empty solver.
func NewSat() *Sat {
	s := &Sat{varInc: 1, claInc: 1, ok: true}
	s.order = &varHeap{act: &s.activity}
	return s
}

// NewVar adds a fresh variable and returns its index.
func (s *Sat) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.phase = append(s.phase, false)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.seen = append(s.seen, false)
	s.watches = append(s.watches, nil, nil)
	s.order.push(v)
	return v
}

// NumVars returns the number of variables.
func (s *Sat) NumVars() int { return len(s.assigns) }

func (s *Sat) value(l Lit) lbool {
	v := s.assigns[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Neg() {
		return -v
	}
	return v
}

// AddClause adds a clause; returns false if the formula became trivially
// UNSAT. Must be called at decision level 0.
func (s *Sat) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Simplify: remove duplicates and false literals, detect tautology.
	out := lits[:0:len(lits)]
	for _, l := range lits {
		switch s.value(l) {
		case lTrue:
			return true // already satisfied forever (level 0)
		case lUndef:
			dup := false
			for _, o := range out {
				if o == l {
					dup = true
					break
				}
				if o == l.Flip() {
					return true // tautology
				}
			}
			if !dup {
				out = append(out, l)
			}
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		if !s.enqueue(out[0], nil) {
			s.ok = false
			return false
		}
		if s.propagate() != nil {
			s.ok = false
			return false
		}
		return true
	}
	c := &clause{lits: append([]Lit(nil), out...)}
	s.clauses = append(s.clauses, c)
	s.watchClause(c)
	return true
}

func (s *Sat) watchClause(c *clause) {
	s.watches[c.lits[0].Flip()] = append(s.watches[c.lits[0].Flip()], watcher{c, c.lits[1]})
	s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], watcher{c, c.lits[0]})
}

func (s *Sat) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Neg() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.phase[v] = !l.Neg()
	s.level[v] = int32(s.decisionLevel())
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Sat) decisionLevel() int { return len(s.trailLim) }

func (s *Sat) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Props++
		ws := s.watches[p]
		j := 0
	nextWatch:
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if s.value(w.blocker) == lTrue {
				ws[j] = w
				j++
				continue
			}
			c := w.c
			// Ensure the false literal (p.Flip()) is lits[1].
			if c.lits[0] == p.Flip() {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			first := c.lits[0]
			if first != w.blocker && s.value(first) == lTrue {
				ws[j] = watcher{c, first}
				j++
				continue
			}
			// Look for a new literal to watch.
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1].Flip()] = append(s.watches[c.lits[1].Flip()], watcher{c, first})
					continue nextWatch
				}
			}
			// Unit or conflicting.
			ws[j] = watcher{c, first}
			j++
			if s.value(first) == lFalse {
				// Conflict: copy back remaining watchers, return.
				for i++; i < len(ws); i++ {
					ws[j] = ws[i]
					j++
				}
				s.watches[p] = ws[:j]
				s.qhead = len(s.trail)
				return c
			}
			s.enqueue(first, c)
		}
		s.watches[p] = ws[:j]
	}
	return nil
}

func (s *Sat) analyze(confl *clause) (learnt []Lit, backLevel int) {
	pathC := 0
	var p Lit = -1
	learnt = append(learnt, 0) // placeholder for the asserting literal
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				s.bumpVar(v)
				if int(s.level[v]) >= s.decisionLevel() {
					pathC++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal to expand.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		v := p.Var()
		s.seen[v] = false
		confl = s.reason[v]
		pathC--
		if pathC == 0 {
			break
		}
	}
	learnt[0] = p.Flip()
	toClear := append([]Lit(nil), learnt...)

	// Minimize: drop literals implied by the rest (cheap local check).
	out := learnt[:1]
	for _, q := range learnt[1:] {
		r := s.reason[q.Var()]
		if r == nil {
			out = append(out, q)
			continue
		}
		redundant := true
		for _, l := range r.lits {
			if l == q.Flip() {
				continue
			}
			if !s.seen[l.Var()] && s.level[l.Var()] > 0 {
				redundant = false
				break
			}
		}
		if !redundant {
			out = append(out, q)
		}
	}
	// Keep seen consistent: clear flags for every var touched, including
	// literals dropped by minimization.
	for _, q := range toClear {
		s.seen[q.Var()] = false
	}
	learnt = out

	// Compute backtrack level: max level among learnt[1:].
	backLevel = 0
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
		backLevel = int(s.level[learnt[1].Var()])
	}
	return learnt, backLevel
}

func (s *Sat) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.order.update(v)
}

func (s *Sat) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.order.pushIfAbsent(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Sat) pickBranchVar() int {
	for {
		v := s.order.pop()
		if v < 0 {
			return -1
		}
		if s.assigns[v] == lUndef {
			return v
		}
	}
}

func (s *Sat) reduceDB() {
	// Drop the least active half of the learnt clauses (keep binary ones).
	if len(s.learnts) < 100 {
		return
	}
	// Partial selection: simple threshold on median-ish activity.
	var sum float64
	for _, c := range s.learnts {
		sum += c.activity
	}
	avg := sum / float64(len(s.learnts))
	kept := s.learnts[:0]
	removed := map[*clause]bool{}
	for _, c := range s.learnts {
		if len(c.lits) <= 2 || c.activity >= avg || s.locked(c) {
			kept = append(kept, c)
		} else {
			removed[c] = true
		}
	}
	if len(removed) == 0 {
		return
	}
	s.learnts = kept
	// Rebuild watches excluding removed clauses.
	for li := range s.watches {
		ws := s.watches[li]
		j := 0
		for _, w := range ws {
			if !removed[w.c] {
				ws[j] = w
				j++
			}
		}
		s.watches[li] = ws[:j]
	}
}

func (s *Sat) locked(c *clause) bool {
	return s.value(c.lits[0]) == lTrue && s.reason[c.lits[0].Var()] == c
}

// Solve determines satisfiability under the given assumptions. On
// SatResult, ModelValue reports the assignment. The solver remains usable
// afterwards (assumptions are retracted).
func (s *Sat) Solve(assumptions ...Lit) SolveResult {
	res := s.solveKeep(assumptions...)
	if res != SatResult {
		s.cancelUntil(0)
	}
	return res
}

// solveKeep is Solve without the final backtrack on success, so the caller
// can read the full model (including assumption-level assignments) before
// calling cancelUntil(0) itself.
func (s *Sat) solveKeep(assumptions ...Lit) SolveResult {
	if !s.ok {
		return Unsat
	}
	s.cancelUntil(0) // discard any model left by a previous solveKeep

	maxConflicts := 256
	conflicts := 0
	budget := s.Budget
	// s.Conflict accumulates across queries; the budget bounds only this
	// query, so compare against the delta from here, not the total.
	baseConflicts := s.Conflict

	for {
		// (Re-)establish assumptions after any restart.
		for s.decisionLevel() < len(assumptions) {
			p := assumptions[s.decisionLevel()]
			switch s.value(p) {
			case lTrue:
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				return Unsat
			}
			s.trailLim = append(s.trailLim, len(s.trail))
			s.enqueue(p, nil)
			if confl := s.propagate(); confl != nil {
				// A conflict while placing assumptions means the
				// assumption set is inconsistent with the formula.
				return Unsat
			}
		}

		confl := s.propagate()
		if confl != nil {
			conflicts++
			s.Conflict++
			if budget > 0 && s.Conflict-baseConflicts > budget {
				return Unknown
			}
			if s.decisionLevel() == 0 {
				s.ok = false
				return Unsat
			}
			if s.decisionLevel() <= len(assumptions) {
				return Unsat
			}
			learnt, backLevel := s.analyze(confl)
			if backLevel < len(assumptions) {
				backLevel = len(assumptions)
			}
			s.cancelUntil(backLevel)
			if len(learnt) == 1 {
				s.cancelUntil(0)
				if !s.enqueue(learnt[0], nil) {
					s.ok = false
					return Unsat
				}
				// Restart loop re-establishes assumptions.
				continue
			}
			c := &clause{lits: learnt, learnt: true, activity: s.claInc}
			s.learnts = append(s.learnts, c)
			s.watchClause(c)
			s.enqueue(learnt[0], c)
			s.varInc *= 1.0 / 0.95
			continue
		}

		if conflicts >= maxConflicts {
			// Restart.
			conflicts = 0
			maxConflicts = maxConflicts * 3 / 2
			s.reduceDB()
			s.cancelUntil(len(assumptions))
			continue
		}

		v := s.pickBranchVar()
		if v < 0 {
			return SatResult
		}
		s.trailLim = append(s.trailLim, len(s.trail))
		s.enqueue(MkLit(v, !s.phase[v]), nil)
	}
}

// ModelValue returns the value of variable v in the last satisfying
// assignment. Unassigned variables report false.
func (s *Sat) ModelValue(v int) bool { return s.assigns[v] == lTrue }

// varHeap is a max-heap on variable activity with lazy deletion.
type varHeap struct {
	act   *[]float64
	heap  []int
	index []int // var -> position in heap, -1 if absent
}

func (h *varHeap) less(i, j int) bool { return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]] }

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.index[h.heap[i]] = i
	h.index[h.heap[j]] = j
}

func (h *varHeap) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.swap(i, p)
		i = p
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}

func (h *varHeap) push(v int) {
	for len(h.index) <= v {
		h.index = append(h.index, -1)
	}
	if h.index[v] >= 0 {
		return
	}
	h.heap = append(h.heap, v)
	h.index[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pushIfAbsent(v int) { h.push(v) }

func (h *varHeap) pop() int {
	if len(h.heap) == 0 {
		return -1
	}
	v := h.heap[0]
	last := len(h.heap) - 1
	h.swap(0, last)
	h.heap = h.heap[:last]
	h.index[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if v < len(h.index) && h.index[v] >= 0 {
		h.up(h.index[v])
	}
}
