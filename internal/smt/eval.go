package smt

import "fmt"

// Assignment maps variable ids to concrete values. Values are stored
// width-masked.
type Assignment map[int]uint64

// Eval computes the concrete value of e under the assignment. Unassigned
// variables evaluate to zero (the solver's don't-care completion). The
// result is masked to e.Width.
func Eval(e *Expr, a Assignment) uint64 {
	cache := map[*Expr]uint64{}
	return evalRec(e, a, cache)
}

// Evaluator evaluates many expressions under one fixed assignment,
// sharing the sub-expression cache across calls. Shadow-state
// reconcretization (re-evaluating every symbolic byte of a forked VP
// under a new solver model) evaluates thousands of expressions that
// share structure, where the per-call cache of Eval would redo the
// shared work each time. The zero-default semantics are identical to
// Eval: unassigned variables evaluate to zero.
type Evaluator struct {
	a     Assignment
	cache map[*Expr]uint64
}

// NewEvaluator creates an evaluator over a. The assignment must not be
// mutated while the evaluator is in use (cached values would go stale).
func NewEvaluator(a Assignment) *Evaluator {
	return &Evaluator{a: a, cache: map[*Expr]uint64{}}
}

// Eval computes the concrete value of e under the evaluator's
// assignment, masked to e.Width.
func (ev *Evaluator) Eval(e *Expr) uint64 {
	return evalRec(e, ev.a, ev.cache)
}

func evalRec(e *Expr, a Assignment, cache map[*Expr]uint64) uint64 {
	if v, ok := cache[e]; ok {
		return v
	}
	var v uint64
	switch e.Kind {
	case KConst:
		v = e.Val
	case KVar:
		v = a[int(e.Val)] & mask(e.Width)
	case KAdd:
		v = evalRec(e.K0, a, cache) + evalRec(e.K1, a, cache)
	case KSub:
		v = evalRec(e.K0, a, cache) - evalRec(e.K1, a, cache)
	case KMul:
		v = evalRec(e.K0, a, cache) * evalRec(e.K1, a, cache)
	case KUDiv:
		d := evalRec(e.K1, a, cache)
		if d == 0 {
			v = mask(e.Width)
		} else {
			v = evalRec(e.K0, a, cache) / d
		}
	case KURem:
		d := evalRec(e.K1, a, cache)
		if d == 0 {
			v = evalRec(e.K0, a, cache)
		} else {
			v = evalRec(e.K0, a, cache) % d
		}
	case KAnd:
		v = evalRec(e.K0, a, cache) & evalRec(e.K1, a, cache)
	case KOr:
		v = evalRec(e.K0, a, cache) | evalRec(e.K1, a, cache)
	case KXor:
		v = evalRec(e.K0, a, cache) ^ evalRec(e.K1, a, cache)
	case KNot:
		v = ^evalRec(e.K0, a, cache)
	case KNeg:
		v = -evalRec(e.K0, a, cache)
	case KShl:
		s := evalRec(e.K1, a, cache)
		if s >= uint64(e.Width) {
			v = 0
		} else {
			v = evalRec(e.K0, a, cache) << s
		}
	case KLShr:
		s := evalRec(e.K1, a, cache)
		if s >= uint64(e.Width) {
			v = 0
		} else {
			v = evalRec(e.K0, a, cache) >> s
		}
	case KAShr:
		s := evalRec(e.K1, a, cache)
		if s >= uint64(e.Width) {
			s = uint64(e.Width) - 1
		}
		v = uint64(sext64(evalRec(e.K0, a, cache), e.K0.Width) >> s)
	case KEq:
		v = b2u(evalRec(e.K0, a, cache) == evalRec(e.K1, a, cache))
	case KUlt:
		v = b2u(evalRec(e.K0, a, cache) < evalRec(e.K1, a, cache))
	case KUle:
		v = b2u(evalRec(e.K0, a, cache) <= evalRec(e.K1, a, cache))
	case KSlt:
		v = b2u(sext64(evalRec(e.K0, a, cache), e.K0.Width) < sext64(evalRec(e.K1, a, cache), e.K1.Width))
	case KSle:
		v = b2u(sext64(evalRec(e.K0, a, cache), e.K0.Width) <= sext64(evalRec(e.K1, a, cache), e.K1.Width))
	case KConcat:
		v = evalRec(e.K0, a, cache)<<e.K1.Width | evalRec(e.K1, a, cache)
	case KExtract:
		v = evalRec(e.K0, a, cache) >> (e.Val & 0xff)
	case KZExt:
		v = evalRec(e.K0, a, cache)
	case KSExt:
		v = uint64(sext64(evalRec(e.K0, a, cache), e.K0.Width))
	case KIte:
		if evalRec(e.K0, a, cache) == 1 {
			v = evalRec(e.K1, a, cache)
		} else {
			v = evalRec(e.K2, a, cache)
		}
	default:
		panic(fmt.Sprintf("smt: eval of %v", e.Kind))
	}
	v &= mask(e.Width)
	cache[e] = v
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
