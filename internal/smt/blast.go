package smt

import "fmt"

// blaster converts bitvector expressions into CNF over the SAT solver
// using Tseitin encoding. Blasted structure is memoized, so repeated
// queries over a growing path condition (the common concolic pattern)
// reuse all previously emitted clauses and only the new suffix is encoded.
type blaster struct {
	sat     *Sat
	bld     *Builder
	bits    map[*Expr][]Lit
	varBits map[int][]Lit
	andMemo map[[2]Lit]Lit
	xorMemo map[[2]Lit]Lit
	litTrue Lit
}

func newBlaster(b *Builder, s *Sat) *blaster {
	bl := &blaster{
		sat:     s,
		bld:     b,
		bits:    make(map[*Expr][]Lit),
		varBits: make(map[int][]Lit),
		andMemo: make(map[[2]Lit]Lit),
		xorMemo: make(map[[2]Lit]Lit),
	}
	v := s.NewVar()
	bl.litTrue = MkLit(v, false)
	s.AddClause(bl.litTrue)
	return bl
}

func (bl *blaster) litFalse() Lit { return bl.litTrue.Flip() }

func (bl *blaster) constLit(b bool) Lit {
	if b {
		return bl.litTrue
	}
	return bl.litFalse()
}

func (bl *blaster) isTrue(l Lit) bool  { return l == bl.litTrue }
func (bl *blaster) isFalse(l Lit) bool { return l == bl.litFalse() }

// mkAnd returns a literal equivalent to a AND b.
func (bl *blaster) mkAnd(a, b Lit) Lit {
	if bl.isFalse(a) || bl.isFalse(b) {
		return bl.litFalse()
	}
	if bl.isTrue(a) {
		return b
	}
	if bl.isTrue(b) {
		return a
	}
	if a == b {
		return a
	}
	if a == b.Flip() {
		return bl.litFalse()
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	if o, ok := bl.andMemo[key]; ok {
		return o
	}
	o := MkLit(bl.sat.NewVar(), false)
	bl.sat.AddClause(o.Flip(), a)
	bl.sat.AddClause(o.Flip(), b)
	bl.sat.AddClause(o, a.Flip(), b.Flip())
	bl.andMemo[key] = o
	return o
}

func (bl *blaster) mkOr(a, b Lit) Lit { return bl.mkAnd(a.Flip(), b.Flip()).Flip() }

// mkXor returns a literal equivalent to a XOR b.
func (bl *blaster) mkXor(a, b Lit) Lit {
	if bl.isFalse(a) {
		return b
	}
	if bl.isFalse(b) {
		return a
	}
	if bl.isTrue(a) {
		return b.Flip()
	}
	if bl.isTrue(b) {
		return a.Flip()
	}
	if a == b {
		return bl.litFalse()
	}
	if a == b.Flip() {
		return bl.litTrue
	}
	// Normalize: strip sign into the output.
	flip := false
	if a.Neg() {
		a = a.Flip()
		flip = !flip
	}
	if b.Neg() {
		b = b.Flip()
		flip = !flip
	}
	if a > b {
		a, b = b, a
	}
	key := [2]Lit{a, b}
	o, ok := bl.xorMemo[key]
	if !ok {
		o = MkLit(bl.sat.NewVar(), false)
		bl.sat.AddClause(o.Flip(), a, b)
		bl.sat.AddClause(o.Flip(), a.Flip(), b.Flip())
		bl.sat.AddClause(o, a.Flip(), b)
		bl.sat.AddClause(o, a, b.Flip())
		bl.xorMemo[key] = o
	}
	if flip {
		return o.Flip()
	}
	return o
}

// mkMux returns s ? t : f.
func (bl *blaster) mkMux(s, t, f Lit) Lit {
	if bl.isTrue(s) {
		return t
	}
	if bl.isFalse(s) {
		return f
	}
	if t == f {
		return t
	}
	return bl.mkOr(bl.mkAnd(s, t), bl.mkAnd(s.Flip(), f))
}

// fullAdder returns (sum, carryOut).
func (bl *blaster) fullAdder(a, b, cin Lit) (Lit, Lit) {
	axb := bl.mkXor(a, b)
	sum := bl.mkXor(axb, cin)
	carry := bl.mkOr(bl.mkAnd(a, b), bl.mkAnd(cin, axb))
	return sum, carry
}

// add returns a+b (LSB-first), dropping the final carry.
func (bl *blaster) add(a, b []Lit) []Lit {
	out := make([]Lit, len(a))
	c := bl.litFalse()
	for i := range a {
		out[i], c = bl.fullAdder(a[i], b[i], c)
	}
	return out
}

// sub returns a-b via a + ^b + 1.
func (bl *blaster) sub(a, b []Lit) []Lit {
	out := make([]Lit, len(a))
	c := bl.litTrue
	for i := range a {
		out[i], c = bl.fullAdder(a[i], b[i].Flip(), c)
	}
	return out
}

// ult returns the borrow-out of a-b, i.e. a < b unsigned.
func (bl *blaster) ult(a, b []Lit) Lit {
	// borrow chain: borrow = (~a & b) | (borrow & ~(a ^ b))
	borrow := bl.litFalse()
	for i := range a {
		nab := bl.mkAnd(a[i].Flip(), b[i])
		eq := bl.mkXor(a[i], b[i]).Flip()
		borrow = bl.mkOr(nab, bl.mkAnd(borrow, eq))
	}
	return borrow
}

func (bl *blaster) eqVec(a, b []Lit) Lit {
	out := bl.litTrue
	for i := range a {
		out = bl.mkAnd(out, bl.mkXor(a[i], b[i]).Flip())
	}
	return out
}

// shift performs a barrel shift. dir: 0=shl, 1=lshr, 2=ashr. amt has the
// same width as a; amounts >= len(a) produce 0 (sign for ashr).
func (bl *blaster) shift(a, amt []Lit, dir int) []Lit {
	w := len(a)
	fill := bl.litFalse()
	if dir == 2 {
		fill = a[w-1]
	}
	cur := append([]Lit(nil), a...)
	// Stages for amount bits that address positions < w.
	stages := 0
	for (1 << stages) < w {
		stages++
	}
	for s := 0; s < stages; s++ {
		d := 1 << s
		next := make([]Lit, w)
		for i := 0; i < w; i++ {
			var shifted Lit
			switch dir {
			case 0: // shl
				if i >= d {
					shifted = cur[i-d]
				} else {
					shifted = bl.litFalse()
				}
			default: // lshr/ashr
				if i+d < w {
					shifted = cur[i+d]
				} else {
					shifted = fill
				}
			}
			next[i] = bl.mkMux(amt[s], shifted, cur[i])
		}
		cur = next
	}
	// If any amount bit >= stages is set, the full result is fill/zero.
	big := bl.litFalse()
	for s := stages; s < len(amt); s++ {
		big = bl.mkOr(big, amt[s])
	}
	// Also handle w not a power of two: amount in [w, 2^stages) must
	// produce the fill value as well.
	if w != 1<<stages {
		wConst := bl.constBits(uint64(w), uint8(len(amt)))
		geW := bl.ult(amt, wConst).Flip()
		big = bl.mkOr(big, geW)
	}
	if !bl.isFalse(big) {
		out := make([]Lit, w)
		zfill := bl.litFalse()
		if dir == 2 {
			zfill = fill
		}
		for i := range cur {
			out[i] = bl.mkMux(big, zfill, cur[i])
		}
		cur = out
	}
	return cur
}

func (bl *blaster) constBits(v uint64, w uint8) []Lit {
	out := make([]Lit, w)
	for i := range out {
		out[i] = bl.constLit(v>>i&1 == 1)
	}
	return out
}

// mul returns a*b via shift-and-add partial products.
func (bl *blaster) mul(a, b []Lit) []Lit {
	w := len(a)
	acc := bl.constBits(0, uint8(w))
	for i := 0; i < w; i++ {
		if bl.isFalse(b[i]) {
			continue
		}
		// partial = (a << i) AND b[i]
		part := make([]Lit, w)
		for j := 0; j < w; j++ {
			if j < i {
				part[j] = bl.litFalse()
			} else {
				part[j] = bl.mkAnd(a[j-i], b[i])
			}
		}
		acc = bl.add(acc, part)
	}
	return acc
}

// divRem implements restoring division. Returns (quotient, remainder).
// For divisor zero this yields q=all-ones, r=a, matching SMT-LIB.
func (bl *blaster) divRem(a, b []Lit) (q, r []Lit) {
	w := len(a)
	// Remainder register has w+1 bits to absorb the shifted-in bit.
	rem := bl.constBits(0, uint8(w+1))
	bExt := append(append([]Lit(nil), b...), bl.litFalse())
	q = make([]Lit, w)
	for i := w - 1; i >= 0; i-- {
		// rem = (rem << 1) | a[i]
		shifted := make([]Lit, w+1)
		shifted[0] = a[i]
		copy(shifted[1:], rem[:w])
		// ge = shifted >= bExt
		ge := bl.ult(shifted, bExt).Flip()
		diff := bl.sub(shifted, bExt)
		next := make([]Lit, w+1)
		for j := range next {
			next[j] = bl.mkMux(ge, diff[j], shifted[j])
		}
		rem = next
		q[i] = ge
	}
	return q, rem[:w]
}

// blast returns the LSB-first bit literals of e.
func (bl *blaster) blast(e *Expr) []Lit {
	if bits, ok := bl.bits[e]; ok {
		return bits
	}
	var out []Lit
	switch e.Kind {
	case KConst:
		out = bl.constBits(e.Val, e.Width)
	case KVar:
		id := int(e.Val)
		vb, ok := bl.varBits[id]
		if !ok {
			vb = make([]Lit, e.Width)
			for i := range vb {
				vb[i] = MkLit(bl.sat.NewVar(), false)
			}
			bl.varBits[id] = vb
		}
		out = vb
	case KAdd:
		out = bl.add(bl.blast(e.K0), bl.blast(e.K1))
	case KSub:
		out = bl.sub(bl.blast(e.K0), bl.blast(e.K1))
	case KMul:
		out = bl.mul(bl.blast(e.K0), bl.blast(e.K1))
	case KUDiv:
		q, _ := bl.divRem(bl.blast(e.K0), bl.blast(e.K1))
		out = q
	case KURem:
		_, r := bl.divRem(bl.blast(e.K0), bl.blast(e.K1))
		out = r
	case KAnd:
		a, b := bl.blast(e.K0), bl.blast(e.K1)
		out = make([]Lit, len(a))
		for i := range a {
			out[i] = bl.mkAnd(a[i], b[i])
		}
	case KOr:
		a, b := bl.blast(e.K0), bl.blast(e.K1)
		out = make([]Lit, len(a))
		for i := range a {
			out[i] = bl.mkOr(a[i], b[i])
		}
	case KXor:
		a, b := bl.blast(e.K0), bl.blast(e.K1)
		out = make([]Lit, len(a))
		for i := range a {
			out[i] = bl.mkXor(a[i], b[i])
		}
	case KNot:
		a := bl.blast(e.K0)
		out = make([]Lit, len(a))
		for i := range a {
			out[i] = a[i].Flip()
		}
	case KNeg:
		a := bl.blast(e.K0)
		na := make([]Lit, len(a))
		for i := range a {
			na[i] = a[i].Flip()
		}
		out = bl.add(na, bl.constBits(1, e.Width))
	case KShl:
		out = bl.shift(bl.blast(e.K0), bl.blast(e.K1), 0)
	case KLShr:
		out = bl.shift(bl.blast(e.K0), bl.blast(e.K1), 1)
	case KAShr:
		out = bl.shift(bl.blast(e.K0), bl.blast(e.K1), 2)
	case KEq:
		out = []Lit{bl.eqVec(bl.blast(e.K0), bl.blast(e.K1))}
	case KUlt:
		out = []Lit{bl.ult(bl.blast(e.K0), bl.blast(e.K1))}
	case KUle:
		out = []Lit{bl.ult(bl.blast(e.K1), bl.blast(e.K0)).Flip()}
	case KSlt:
		a, b := bl.flipSign(bl.blast(e.K0)), bl.flipSign(bl.blast(e.K1))
		out = []Lit{bl.ult(a, b)}
	case KSle:
		a, b := bl.flipSign(bl.blast(e.K0)), bl.flipSign(bl.blast(e.K1))
		out = []Lit{bl.ult(b, a).Flip()}
	case KConcat:
		lo := bl.blast(e.K1)
		hi := bl.blast(e.K0)
		out = append(append([]Lit(nil), lo...), hi...)
	case KExtract:
		a := bl.blast(e.K0)
		hi, lo := int(e.Val>>8), int(e.Val&0xff)
		out = append([]Lit(nil), a[lo:hi+1]...)
	case KZExt:
		a := bl.blast(e.K0)
		out = append([]Lit(nil), a...)
		for len(out) < int(e.Width) {
			out = append(out, bl.litFalse())
		}
	case KSExt:
		a := bl.blast(e.K0)
		out = append([]Lit(nil), a...)
		s := a[len(a)-1]
		for len(out) < int(e.Width) {
			out = append(out, s)
		}
	case KIte:
		c := bl.blastBool(e.K0)
		t, f := bl.blast(e.K1), bl.blast(e.K2)
		out = make([]Lit, len(t))
		for i := range t {
			out[i] = bl.mkMux(c, t[i], f[i])
		}
	default:
		panic(fmt.Sprintf("smt: blast of %v", e.Kind))
	}
	if len(out) != int(e.Width) {
		panic(fmt.Sprintf("smt: blast width mismatch for %v: got %d want %d", e.Kind, len(out), e.Width))
	}
	bl.bits[e] = out
	return out
}

// flipSign flips the MSB (signed -> unsigned comparison shift).
func (bl *blaster) flipSign(a []Lit) []Lit {
	out := append([]Lit(nil), a...)
	out[len(out)-1] = out[len(out)-1].Flip()
	return out
}

// blastBool blasts a width-1 expression to a single literal.
func (bl *blaster) blastBool(e *Expr) Lit {
	if e.Width != 1 {
		panic("smt: blastBool on wide expression")
	}
	return bl.blast(e)[0]
}
