package smt

import "testing"

func TestAndAllOrAll(t *testing.T) {
	b := NewBuilder()
	if !b.AndAll(nil).IsTrue() {
		t.Error("AndAll(nil) is not true")
	}
	if !b.OrAll(nil).IsFalse() {
		t.Error("OrAll(nil) is not false")
	}
	x := b.Var(1, "aa_x") // var 0
	y := b.Var(1, "aa_y") // var 1
	if got := b.AndAll([]*Expr{b.Bool(true), x}); got != x {
		t.Errorf("AndAll(true, x) = %v, want x", got)
	}
	if got := b.OrAll([]*Expr{b.Bool(false), y}); got != y {
		t.Errorf("OrAll(false, y) = %v, want y", got)
	}
	if !b.AndAll([]*Expr{x, b.Bool(false), y}).IsFalse() {
		t.Error("AndAll with a false element is not false")
	}
	if !b.OrAll([]*Expr{x, b.Bool(true), y}).IsTrue() {
		t.Error("OrAll with a true element is not true")
	}
	// Truth tables of the folded n-ary forms.
	and := b.AndAll([]*Expr{x, y})
	or := b.OrAll([]*Expr{x, y})
	for xv := uint64(0); xv <= 1; xv++ {
		for yv := uint64(0); yv <= 1; yv++ {
			env := Assignment{0: xv, 1: yv}
			if got := Eval(and, env); got != xv&yv {
				t.Errorf("AndAll(%d,%d) = %d", xv, yv, got)
			}
			if got := Eval(or, env); got != xv|yv {
				t.Errorf("OrAll(%d,%d) = %d", xv, yv, got)
			}
		}
	}
}

// memEnv builds a Mem whose background is Const(8, addr&0xff) — easy to
// predict and pure, like the BMC executor's snapshot-backed base.
func memEnv(b *Builder) *Mem {
	return NewMem(func(addr uint32) *Expr { return b.Const(8, uint64(addr&0xff)) })
}

func TestMemLoadStore(t *testing.T) {
	b := NewBuilder()
	m := memEnv(b)
	if got := Eval(m.Load(0x42), nil); got != 0x42 {
		t.Fatalf("untouched load = %#x, want background", got)
	}
	v := b.Var(8, "m_v") // var 0
	m.Store(0x42, v)
	if m.Load(0x42) != v {
		t.Fatal("overlaid load does not return the stored expression")
	}
	if m.Overlay() != 1 {
		t.Fatalf("overlay size = %d, want 1", m.Overlay())
	}
	// Storing exactly the background byte erases the overlay entry.
	m.Store(0x42, b.Const(8, 0x42))
	if m.Overlay() != 0 {
		t.Fatalf("overlay size after background re-store = %d, want 0", m.Overlay())
	}
	defer func() {
		if recover() == nil {
			t.Error("Store of a non-byte width did not panic")
		}
	}()
	m.Store(0, b.Const(32, 0))
}

func TestMemCloneIsIndependent(t *testing.T) {
	b := NewBuilder()
	m := memEnv(b)
	m.Store(1, b.Const(8, 0xaa))
	n := m.Clone()
	n.Store(1, b.Const(8, 0xbb))
	n.Store(2, b.Const(8, 0xcc))
	if got := Eval(m.Load(1), nil); got != 0xaa {
		t.Errorf("clone write leaked into original: %#x", got)
	}
	if m.Overlay() != 1 || n.Overlay() != 2 {
		t.Errorf("overlay sizes = %d/%d, want 1/2", m.Overlay(), n.Overlay())
	}
}

// TestMemMerge checks the join-point semantics: after m.Merge(g, other),
// every byte reads as ite(g, m's value, other's value), including bytes
// overlaid on only one side; bytes equal on both sides stay un-ite'd.
func TestMemMerge(t *testing.T) {
	b := NewBuilder()
	g := b.Var(1, "mg") // var 0
	m := memEnv(b)
	o := memEnv(b)
	m.Store(1, b.Const(8, 0x11)) // both sides, different
	o.Store(1, b.Const(8, 0x22))
	m.Store(2, b.Const(8, 0x33)) // m only
	o.Store(3, b.Const(8, 0x44)) // o only
	m.Store(4, b.Const(8, 0x55)) // both sides, identical
	o.Store(4, b.Const(8, 0x55))

	m.Merge(b, g, o)
	for _, tc := range []struct {
		addr       uint32
		whenG, els uint64
	}{
		{1, 0x11, 0x22},
		{2, 0x33, 0x02}, // else-side reads o's background
		{3, 0x03, 0x44}, // guard-side reads m's background
		{4, 0x55, 0x55},
		{9, 0x09, 0x09}, // untouched background everywhere
	} {
		e := m.Load(tc.addr)
		if got := Eval(e, Assignment{0: 1}); got != tc.whenG {
			t.Errorf("addr %d under g: %#x, want %#x", tc.addr, got, tc.whenG)
		}
		if got := Eval(e, Assignment{0: 0}); got != tc.els {
			t.Errorf("addr %d under !g: %#x, want %#x", tc.addr, got, tc.els)
		}
	}
	// The identical byte and the untouched byte must not have minted an
	// ite: the identical store stays a plain constant.
	if m.Load(4) != b.Const(8, 0x55) {
		t.Error("identical bytes were ite-merged")
	}
}
