// Package smt implements a quantifier-free bitvector (QF_BV) constraint
// solver: a hash-consed expression DAG with aggressive constant folding, a
// Tseitin bit-blaster and a CDCL SAT solver. It plays the role that
// KLEE+STP play in the paper — the symbolic backend of the concolic
// testing engine.
package smt

import (
	"fmt"
	"strings"
	"sync"
)

// Kind identifies the operator of an expression node.
type Kind uint8

// Expression kinds. All expressions are bitvectors; boolean values are
// bitvectors of width 1 (as in STP's internal representation).
const (
	KConst Kind = iota // literal constant; value in Val
	KVar               // free variable; variable id in Val

	// Arithmetic, width(w,w)->w
	KAdd
	KSub
	KMul
	KUDiv // unsigned division; unconstrained result when divisor is 0
	KURem // unsigned remainder; unconstrained result when divisor is 0

	// Bitwise, width(w,w)->w / (w)->w
	KAnd
	KOr
	KXor
	KNot
	KNeg

	// Shifts, width(w,w)->w. Shift amounts >= w yield 0 (or sign-fill
	// for KAShr), matching SMT-LIB semantics.
	KShl
	KLShr
	KAShr

	// Comparisons, width(w,w)->1
	KEq
	KUlt
	KUle
	KSlt
	KSle

	// Structure
	KConcat  // (w1,w2)->w1+w2; kid0 is the high part
	KExtract // Val = hi<<8|lo; (w)->hi-lo+1
	KZExt    // Val = target width
	KSExt    // Val = target width
	KIte     // (1,w,w)->w
)

var kindNames = [...]string{
	KConst: "const", KVar: "var",
	KAdd: "bvadd", KSub: "bvsub", KMul: "bvmul", KUDiv: "bvudiv", KURem: "bvurem",
	KAnd: "bvand", KOr: "bvor", KXor: "bvxor", KNot: "bvnot", KNeg: "bvneg",
	KShl: "bvshl", KLShr: "bvlshr", KAShr: "bvashr",
	KEq: "=", KUlt: "bvult", KUle: "bvule", KSlt: "bvslt", KSle: "bvsle",
	KConcat: "concat", KExtract: "extract", KZExt: "zext", KSExt: "sext",
	KIte: "ite",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Expr is an immutable, hash-consed bitvector expression node. Exprs are
// created through a Builder and must never be mutated; pointer equality
// implies structural equality within one Builder.
type Expr struct {
	Kind  Kind
	Width uint8  // bit width of the result, 1..64
	Val   uint64 // constant value, variable id, extract bounds, or ext width
	K0    *Expr
	K1    *Expr
	K2    *Expr
}

// exprKey is the interning key. Two nodes with equal keys are the same node.
type exprKey struct {
	kind       Kind
	width      uint8
	val        uint64
	k0, k1, k2 *Expr
}

// Builder creates and interns expressions. A single mutex guards the
// intern table and the variable registry, so one Builder may be shared by
// concurrent exploration workers (each running its own core and solver);
// the expressions themselves are immutable and need no synchronization.
type Builder struct {
	mu       sync.Mutex
	intern   map[exprKey]*Expr
	varNames []string // variable id -> name
	varWidth []uint8  // variable id -> width
}

// NewBuilder returns an empty expression builder.
func NewBuilder() *Builder {
	return &Builder{intern: make(map[exprKey]*Expr)}
}

// NumVars reports how many distinct variables have been created.
func (b *Builder) NumVars() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.varNames)
}

// VarName returns the name of variable id.
func (b *Builder) VarName(id int) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.varNames[id]
}

// VarID returns the id of the named variable, if it exists.
func (b *Builder) VarID(name string) (int, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, n := range b.varNames {
		if n == name {
			return id, true
		}
	}
	return 0, false
}

// VarWidth returns the width of variable id.
func (b *Builder) VarWidth(id int) uint8 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.varWidth[id]
}

func (b *Builder) mk(kind Kind, width uint8, val uint64, k0, k1, k2 *Expr) *Expr {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.mkLocked(kind, width, val, k0, k1, k2)
}

// mkLocked interns a node; the caller must hold b.mu.
func (b *Builder) mkLocked(kind Kind, width uint8, val uint64, k0, k1, k2 *Expr) *Expr {
	key := exprKey{kind, width, val, k0, k1, k2}
	if e, ok := b.intern[key]; ok {
		return e
	}
	e := &Expr{Kind: kind, Width: width, Val: val, K0: k0, K1: k1, K2: k2}
	b.intern[key] = e
	return e
}

// mask returns the w-bit mask.
func mask(w uint8) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// signBit reports whether the sign bit of a w-bit value v is set.
func signBit(v uint64, w uint8) bool { return v>>(w-1)&1 == 1 }

// sext sign-extends a w-bit value to 64 bits.
func sext64(v uint64, w uint8) int64 {
	if w >= 64 {
		return int64(v)
	}
	if signBit(v, w) {
		return int64(v | ^mask(w))
	}
	return int64(v)
}

// Const returns the constant expression of the given width. The value is
// truncated to the width.
func (b *Builder) Const(width uint8, val uint64) *Expr {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("smt: bad const width %d", width))
	}
	return b.mk(KConst, width, val&mask(width), nil, nil, nil)
}

// Bool returns the width-1 constant for v.
func (b *Builder) Bool(v bool) *Expr {
	if v {
		return b.Const(1, 1)
	}
	return b.Const(1, 0)
}

// True reports whether e is the width-1 constant 1.
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Width == 1 && e.Val == 1 }

// IsFalse reports whether e is the width-1 constant 0.
func (e *Expr) IsFalse() bool { return e.Kind == KConst && e.Width == 1 && e.Val == 0 }

// IsConst reports whether e is a constant.
func (e *Expr) IsConst() bool { return e.Kind == KConst }

// Var creates (or reuses, by name) a fresh free variable. Creating a
// variable with a name already in use returns the existing variable; the
// widths must then agree.
func (b *Builder) Var(width uint8, name string) *Expr {
	if width == 0 || width > 64 {
		panic(fmt.Sprintf("smt: bad var width %d", width))
	}
	// The lock spans the lookup and the registration so concurrent
	// workers minting the same name agree on one variable id.
	b.mu.Lock()
	defer b.mu.Unlock()
	for id, n := range b.varNames {
		if n == name {
			if b.varWidth[id] != width {
				panic(fmt.Sprintf("smt: variable %q redeclared with width %d (was %d)", name, width, b.varWidth[id]))
			}
			return b.mkLocked(KVar, width, uint64(id), nil, nil, nil)
		}
	}
	id := len(b.varNames)
	b.varNames = append(b.varNames, name)
	b.varWidth = append(b.varWidth, width)
	return b.mkLocked(KVar, width, uint64(id), nil, nil, nil)
}

func ckWidth(op string, a, b *Expr) {
	if a.Width != b.Width {
		panic(fmt.Sprintf("smt: %s width mismatch %d vs %d", op, a.Width, b.Width))
	}
}

// binFold applies constant folding for a binary op; returns nil if not folded.
func (b *Builder) binFold(kind Kind, x, y *Expr) *Expr {
	if x.Kind != KConst || y.Kind != KConst {
		return nil
	}
	w := x.Width
	m := mask(w)
	a, c := x.Val, y.Val
	var r uint64
	switch kind {
	case KAdd:
		r = (a + c) & m
	case KSub:
		r = (a - c) & m
	case KMul:
		r = (a * c) & m
	case KUDiv:
		if c == 0 {
			r = m // SMT-LIB: bvudiv by zero yields all-ones
		} else {
			r = (a / c) & m
		}
	case KURem:
		if c == 0 {
			r = a
		} else {
			r = (a % c) & m
		}
	case KAnd:
		r = a & c
	case KOr:
		r = a | c
	case KXor:
		r = a ^ c
	case KShl:
		if c >= uint64(w) {
			r = 0
		} else {
			r = (a << c) & m
		}
	case KLShr:
		if c >= uint64(w) {
			r = 0
		} else {
			r = a >> c
		}
	case KAShr:
		if c >= uint64(w) {
			c = uint64(w) - 1
		}
		r = uint64(sext64(a, w)>>c) & m
	case KEq:
		return b.Bool(a == c)
	case KUlt:
		return b.Bool(a < c)
	case KUle:
		return b.Bool(a <= c)
	case KSlt:
		return b.Bool(sext64(a, w) < sext64(c, w))
	case KSle:
		return b.Bool(sext64(a, w) <= sext64(c, w))
	default:
		return nil
	}
	return b.Const(w, r)
}

// Add returns x + y.
func (b *Builder) Add(x, y *Expr) *Expr {
	ckWidth("add", x, y)
	if e := b.binFold(KAdd, x, y); e != nil {
		return e
	}
	// Canonicalize: constant on the right.
	if x.Kind == KConst {
		x, y = y, x
	}
	if y.Kind == KConst && y.Val == 0 {
		return x
	}
	// (x + c1) + c2 -> x + (c1+c2)
	if x.Kind == KAdd && x.K1.Kind == KConst && y.Kind == KConst {
		return b.Add(x.K0, b.Const(x.Width, x.K1.Val+y.Val))
	}
	return b.mk(KAdd, x.Width, 0, x, y, nil)
}

// Sub returns x - y.
func (b *Builder) Sub(x, y *Expr) *Expr {
	ckWidth("sub", x, y)
	if e := b.binFold(KSub, x, y); e != nil {
		return e
	}
	if y.Kind == KConst && y.Val == 0 {
		return x
	}
	if x == y {
		return b.Const(x.Width, 0)
	}
	// x - c -> x + (-c): reuse Add's folding chain.
	if y.Kind == KConst {
		return b.Add(x, b.Const(x.Width, -y.Val))
	}
	return b.mk(KSub, x.Width, 0, x, y, nil)
}

// Mul returns x * y.
func (b *Builder) Mul(x, y *Expr) *Expr {
	ckWidth("mul", x, y)
	if e := b.binFold(KMul, x, y); e != nil {
		return e
	}
	if x.Kind == KConst {
		x, y = y, x
	}
	if y.Kind == KConst {
		switch y.Val {
		case 0:
			return y
		case 1:
			return x
		}
	}
	return b.mk(KMul, x.Width, 0, x, y, nil)
}

// UDiv returns x / y (unsigned). Division by zero yields all-ones
// (SMT-LIB semantics); RISC-V div-by-zero handling is layered on top
// by the ISS with an Ite.
func (b *Builder) UDiv(x, y *Expr) *Expr {
	ckWidth("udiv", x, y)
	if e := b.binFold(KUDiv, x, y); e != nil {
		return e
	}
	if y.Kind == KConst && y.Val == 1 {
		return x
	}
	return b.mk(KUDiv, x.Width, 0, x, y, nil)
}

// URem returns x % y (unsigned). x % 0 == x (SMT-LIB semantics).
func (b *Builder) URem(x, y *Expr) *Expr {
	ckWidth("urem", x, y)
	if e := b.binFold(KURem, x, y); e != nil {
		return e
	}
	if y.Kind == KConst && y.Val == 1 {
		return b.Const(x.Width, 0)
	}
	return b.mk(KURem, x.Width, 0, x, y, nil)
}

// And returns x & y.
func (b *Builder) And(x, y *Expr) *Expr {
	ckWidth("and", x, y)
	if e := b.binFold(KAnd, x, y); e != nil {
		return e
	}
	if x.Kind == KConst {
		x, y = y, x
	}
	if y.Kind == KConst {
		if y.Val == 0 {
			return y
		}
		if y.Val == mask(x.Width) {
			return x
		}
	}
	if x == y {
		return x
	}
	return b.mk(KAnd, x.Width, 0, x, y, nil)
}

// Or returns x | y.
func (b *Builder) Or(x, y *Expr) *Expr {
	ckWidth("or", x, y)
	if e := b.binFold(KOr, x, y); e != nil {
		return e
	}
	if x.Kind == KConst {
		x, y = y, x
	}
	if y.Kind == KConst {
		if y.Val == 0 {
			return x
		}
		if y.Val == mask(x.Width) {
			return y
		}
	}
	if x == y {
		return x
	}
	return b.mk(KOr, x.Width, 0, x, y, nil)
}

// Xor returns x ^ y.
func (b *Builder) Xor(x, y *Expr) *Expr {
	ckWidth("xor", x, y)
	if e := b.binFold(KXor, x, y); e != nil {
		return e
	}
	if x.Kind == KConst {
		x, y = y, x
	}
	if y.Kind == KConst && y.Val == 0 {
		return x
	}
	if x == y {
		return b.Const(x.Width, 0)
	}
	return b.mk(KXor, x.Width, 0, x, y, nil)
}

// Not returns ^x (bitwise complement; logical negation for width 1).
func (b *Builder) Not(x *Expr) *Expr {
	if x.Kind == KConst {
		return b.Const(x.Width, ^x.Val)
	}
	if x.Kind == KNot {
		return x.K0
	}
	return b.mk(KNot, x.Width, 0, x, nil, nil)
}

// Neg returns -x (two's complement).
func (b *Builder) Neg(x *Expr) *Expr {
	if x.Kind == KConst {
		return b.Const(x.Width, -x.Val)
	}
	if x.Kind == KNeg {
		return x.K0
	}
	return b.mk(KNeg, x.Width, 0, x, nil, nil)
}

// Shl returns x << y (zero fill, amounts >= width give 0).
func (b *Builder) Shl(x, y *Expr) *Expr {
	ckWidth("shl", x, y)
	if e := b.binFold(KShl, x, y); e != nil {
		return e
	}
	if y.Kind == KConst && y.Val == 0 {
		return x
	}
	return b.mk(KShl, x.Width, 0, x, y, nil)
}

// LShr returns x >> y (logical).
func (b *Builder) LShr(x, y *Expr) *Expr {
	ckWidth("lshr", x, y)
	if e := b.binFold(KLShr, x, y); e != nil {
		return e
	}
	if y.Kind == KConst && y.Val == 0 {
		return x
	}
	return b.mk(KLShr, x.Width, 0, x, y, nil)
}

// AShr returns x >> y (arithmetic).
func (b *Builder) AShr(x, y *Expr) *Expr {
	ckWidth("ashr", x, y)
	if e := b.binFold(KAShr, x, y); e != nil {
		return e
	}
	if y.Kind == KConst && y.Val == 0 {
		return x
	}
	return b.mk(KAShr, x.Width, 0, x, y, nil)
}

// Eq returns the width-1 expression x == y.
func (b *Builder) Eq(x, y *Expr) *Expr {
	ckWidth("eq", x, y)
	if e := b.binFold(KEq, x, y); e != nil {
		return e
	}
	if x == y {
		return b.Bool(true)
	}
	// Order operands deterministically so eq(x,y) and eq(y,x) intern alike:
	// put constants on the right.
	if x.Kind == KConst {
		x, y = y, x
	}
	// Width-1 equality against a constant is identity or negation.
	if x.Width == 1 && y.Kind == KConst {
		if y.Val == 1 {
			return x
		}
		return b.Not(x)
	}
	return b.mk(KEq, 1, 0, x, y, nil)
}

// Ne returns x != y.
func (b *Builder) Ne(x, y *Expr) *Expr { return b.Not(b.Eq(x, y)) }

// Ult returns the width-1 expression x < y (unsigned).
func (b *Builder) Ult(x, y *Expr) *Expr {
	ckWidth("ult", x, y)
	if e := b.binFold(KUlt, x, y); e != nil {
		return e
	}
	if x == y {
		return b.Bool(false)
	}
	if y.Kind == KConst && y.Val == 0 {
		return b.Bool(false) // nothing is < 0 unsigned
	}
	if x.Kind == KConst && x.Val == mask(y.Width) {
		return b.Bool(false) // all-ones is not < anything
	}
	return b.mk(KUlt, 1, 0, x, y, nil)
}

// Ule returns x <= y (unsigned).
func (b *Builder) Ule(x, y *Expr) *Expr {
	ckWidth("ule", x, y)
	if e := b.binFold(KUle, x, y); e != nil {
		return e
	}
	if x == y {
		return b.Bool(true)
	}
	if x.Kind == KConst && x.Val == 0 {
		return b.Bool(true)
	}
	if y.Kind == KConst && y.Val == mask(x.Width) {
		return b.Bool(true)
	}
	return b.mk(KUle, 1, 0, x, y, nil)
}

// Slt returns x < y (signed).
func (b *Builder) Slt(x, y *Expr) *Expr {
	ckWidth("slt", x, y)
	if e := b.binFold(KSlt, x, y); e != nil {
		return e
	}
	if x == y {
		return b.Bool(false)
	}
	return b.mk(KSlt, 1, 0, x, y, nil)
}

// Sle returns x <= y (signed).
func (b *Builder) Sle(x, y *Expr) *Expr {
	ckWidth("sle", x, y)
	if e := b.binFold(KSle, x, y); e != nil {
		return e
	}
	if x == y {
		return b.Bool(true)
	}
	return b.mk(KSle, 1, 0, x, y, nil)
}

// Ugt / Uge / Sgt / Sge are the flipped comparison helpers.
func (b *Builder) Ugt(x, y *Expr) *Expr { return b.Ult(y, x) }
func (b *Builder) Uge(x, y *Expr) *Expr { return b.Ule(y, x) }
func (b *Builder) Sgt(x, y *Expr) *Expr { return b.Slt(y, x) }
func (b *Builder) Sge(x, y *Expr) *Expr { return b.Sle(y, x) }

// Concat returns hi ++ lo (hi occupies the upper bits).
func (b *Builder) Concat(hi, lo *Expr) *Expr {
	w := int(hi.Width) + int(lo.Width)
	if w > 64 {
		panic(fmt.Sprintf("smt: concat width %d > 64", w))
	}
	if hi.Kind == KConst && lo.Kind == KConst {
		return b.Const(uint8(w), hi.Val<<lo.Width|lo.Val)
	}
	// concat(extract(e,hi1,lo1), extract(e,hi2,lo2)) with lo1 == hi2+1
	// -> extract(e, hi1, lo2): re-fuses byte-wise memory round trips.
	if hi.Kind == KExtract && lo.Kind == KExtract && hi.K0 == lo.K0 {
		h1, l1 := uint8(hi.Val>>8), uint8(hi.Val)
		h2, l2 := uint8(lo.Val>>8), uint8(lo.Val)
		if l1 == h2+1 {
			return b.Extract(hi.K0, h1, l2)
		}
	}
	return b.mk(KConcat, uint8(w), 0, hi, lo, nil)
}

// Extract returns bits hi..lo (inclusive) of x.
func (b *Builder) Extract(x *Expr, hi, lo uint8) *Expr {
	if hi < lo || hi >= x.Width {
		panic(fmt.Sprintf("smt: bad extract [%d:%d] of width %d", hi, lo, x.Width))
	}
	w := hi - lo + 1
	if w == x.Width {
		return x
	}
	if x.Kind == KConst {
		return b.Const(w, x.Val>>lo)
	}
	switch x.Kind {
	case KExtract:
		// extract(extract(e,h,l), hi,lo) -> extract(e, l+hi, l+lo)
		l := uint8(x.Val)
		return b.Extract(x.K0, l+hi, l+lo)
	case KConcat:
		loW := x.K1.Width
		if lo >= loW {
			return b.Extract(x.K0, hi-loW, lo-loW)
		}
		if hi < loW {
			return b.Extract(x.K1, hi, lo)
		}
	case KZExt:
		if hi < x.K0.Width {
			return b.Extract(x.K0, hi, lo)
		}
		if lo >= x.K0.Width {
			return b.Const(w, 0)
		}
		if lo == 0 && hi >= x.K0.Width {
			return b.ZExt(x.K0, w)
		}
	case KSExt:
		if hi < x.K0.Width {
			return b.Extract(x.K0, hi, lo)
		}
		if lo == 0 && hi >= x.K0.Width {
			return b.SExt(x.K0, w)
		}
	case KIte:
		// Push extracts through ite so byte loads of an ite-valued word
		// stay small.
		if x.K1.Kind == KConst || x.K2.Kind == KConst {
			return b.Ite(x.K0, b.Extract(x.K1, hi, lo), b.Extract(x.K2, hi, lo))
		}
	}
	return b.mk(KExtract, w, uint64(hi)<<8|uint64(lo), x, nil, nil)
}

// ZExt zero-extends x to width w.
func (b *Builder) ZExt(x *Expr, w uint8) *Expr {
	if w < x.Width {
		panic(fmt.Sprintf("smt: zext to narrower width %d < %d", w, x.Width))
	}
	if w == x.Width {
		return x
	}
	if x.Kind == KConst {
		return b.Const(w, x.Val)
	}
	if x.Kind == KZExt {
		return b.ZExt(x.K0, w)
	}
	return b.mk(KZExt, w, uint64(w), x, nil, nil)
}

// SExt sign-extends x to width w.
func (b *Builder) SExt(x *Expr, w uint8) *Expr {
	if w < x.Width {
		panic(fmt.Sprintf("smt: sext to narrower width %d < %d", w, x.Width))
	}
	if w == x.Width {
		return x
	}
	if x.Kind == KConst {
		return b.Const(w, uint64(sext64(x.Val, x.Width)))
	}
	if x.Kind == KSExt {
		return b.SExt(x.K0, w)
	}
	if x.Kind == KZExt && x.K0.Width < x.Width {
		// The top bit of a zext is 0, so further sign extension is zext.
		return b.ZExt(x.K0, w)
	}
	return b.mk(KSExt, w, uint64(w), x, nil, nil)
}

// Ite returns if c then t else f. c must have width 1, t and f equal widths.
func (b *Builder) Ite(c, t, f *Expr) *Expr {
	if c.Width != 1 {
		panic("smt: ite condition must have width 1")
	}
	ckWidth("ite", t, f)
	if c.IsTrue() {
		return t
	}
	if c.IsFalse() {
		return f
	}
	if t == f {
		return t
	}
	if c.Kind == KNot {
		return b.Ite(c.K0, f, t)
	}
	// Boolean-valued ite simplifications.
	if t.Width == 1 {
		if t.IsTrue() && f.IsFalse() {
			return c
		}
		if t.IsFalse() && f.IsTrue() {
			return b.Not(c)
		}
		if t.IsTrue() {
			return b.Or(c, f)
		}
		if f.IsFalse() {
			return b.And(c, t)
		}
		if t.IsFalse() {
			return b.And(b.Not(c), f)
		}
		if f.IsTrue() {
			return b.Or(b.Not(c), t)
		}
	}
	return b.mk(KIte, t.Width, 0, c, t, f)
}

// Implies returns !a || b for width-1 operands.
func (b *Builder) Implies(a, c *Expr) *Expr { return b.Or(b.Not(a), c) }

// String renders the expression in an SMT-LIB-flavoured prefix syntax.
// Shared subtrees are rendered repeatedly; this is a debugging aid, not a
// serialization format.
func (e *Expr) String() string {
	var sb strings.Builder
	e.write(&sb, 0)
	return sb.String()
}

const maxPrintDepth = 12

func (e *Expr) write(sb *strings.Builder, depth int) {
	if depth > maxPrintDepth {
		sb.WriteString("...")
		return
	}
	switch e.Kind {
	case KConst:
		fmt.Fprintf(sb, "#x%0*x", (e.Width+3)/4, e.Val)
	case KVar:
		fmt.Fprintf(sb, "v%d", e.Val)
	case KExtract:
		fmt.Fprintf(sb, "(extract[%d:%d] ", e.Val>>8, e.Val&0xff)
		e.K0.write(sb, depth+1)
		sb.WriteString(")")
	case KZExt, KSExt:
		fmt.Fprintf(sb, "(%s[%d] ", e.Kind, e.Width)
		e.K0.write(sb, depth+1)
		sb.WriteString(")")
	default:
		sb.WriteString("(")
		sb.WriteString(e.Kind.String())
		for _, k := range []*Expr{e.K0, e.K1, e.K2} {
			if k == nil {
				break
			}
			sb.WriteString(" ")
			k.write(sb, depth+1)
		}
		sb.WriteString(")")
	}
}

// Vars appends the distinct variable ids appearing in e to dst and
// returns it. seen must be non-nil and is shared across calls to
// deduplicate over multiple expressions.
func (e *Expr) Vars(dst []int, seen map[*Expr]bool) []int {
	if seen[e] {
		return dst
	}
	seen[e] = true
	if e.Kind == KVar {
		return append(dst, int(e.Val))
	}
	for _, k := range []*Expr{e.K0, e.K1, e.K2} {
		if k == nil {
			break
		}
		dst = k.Vars(dst, seen)
	}
	return dst
}

// Size returns the number of distinct nodes in the DAG rooted at e.
func (e *Expr) Size() int {
	seen := map[*Expr]bool{}
	var walk func(*Expr)
	walk = func(x *Expr) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		walk(x.K0)
		walk(x.K1)
		walk(x.K2)
	}
	walk(e)
	return len(seen)
}
