// Package relf reads and writes minimal ELF32 files for RISC-V (EM_RISCV,
// little-endian). The paper's flow compiles software plus the CTE
// SW-library into a RISC-V ELF, loads it into the VP memory and resolves
// peripheral entry points by ELF symbol name (§3.1.1, §3.2.2); this
// package provides exactly that: one loadable segment (plus implicit BSS)
// and a symbol table.
package relf

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"
)

// File is a loaded or to-be-written ELF image.
type File struct {
	Entry   uint32
	Addr    uint32 // load address of Data
	Data    []byte
	MemSize uint32 // >= len(Data); excess is zero-initialized (BSS)
	Symbols map[string]uint32
}

// Symbol looks up a symbol, returning its address and presence.
func (f *File) Symbol(name string) (uint32, bool) {
	v, ok := f.Symbols[name]
	return v, ok
}

const (
	ehSize     = 52
	phEntSize  = 32
	shEntSize  = 40
	symEntSize = 16

	elfMagic   = "\x7fELF"
	emRISCV    = 243
	ptLoad     = 1
	shtSymtab  = 2
	shtStrtab  = 3
	shtNull    = 0
	shtProgbit = 1
)

// Write serializes f as a relocatable-free executable ELF32 image.
func Write(f *File) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian

	// Layout: ehdr | phdr | data | symtab | strtab | shstrtab | shdrs
	dataOff := uint32(ehSize + phEntSize)

	names := make([]string, 0, len(f.Symbols))
	for n := range f.Symbols {
		names = append(names, n)
	}
	sort.Strings(names)

	var strtab bytes.Buffer
	strtab.WriteByte(0)
	var symtab bytes.Buffer
	// Null symbol entry.
	symtab.Write(make([]byte, symEntSize))
	for _, n := range names {
		nameOff := uint32(strtab.Len())
		strtab.WriteString(n)
		strtab.WriteByte(0)
		var ent [symEntSize]byte
		le.PutUint32(ent[0:], nameOff)
		le.PutUint32(ent[4:], f.Symbols[n]) // st_value
		le.PutUint32(ent[8:], 0)            // st_size
		ent[12] = 0x10                      // STB_GLOBAL, STT_NOTYPE
		le.PutUint16(ent[14:], 1)           // st_shndx: .text
		symtab.Write(ent[:])
	}

	symtabOff := dataOff + uint32(len(f.Data))
	strtabOff := symtabOff + uint32(symtab.Len())
	shstrtab := []byte("\x00.text\x00.symtab\x00.strtab\x00.shstrtab\x00")
	shstrtabOff := strtabOff + uint32(strtab.Len())
	shOff := shstrtabOff + uint32(len(shstrtab))

	// ELF header.
	var eh [ehSize]byte
	copy(eh[0:], elfMagic)
	eh[4] = 1                      // ELFCLASS32
	eh[5] = 1                      // ELFDATA2LSB
	eh[6] = 1                      // EV_CURRENT
	le.PutUint16(eh[16:], 2)       // ET_EXEC
	le.PutUint16(eh[18:], emRISCV) // e_machine
	le.PutUint32(eh[20:], 1)       // e_version
	le.PutUint32(eh[24:], f.Entry)
	le.PutUint32(eh[28:], ehSize) // e_phoff
	le.PutUint32(eh[32:], shOff)  // e_shoff
	le.PutUint32(eh[36:], 0)      // e_flags
	le.PutUint16(eh[40:], ehSize)
	le.PutUint16(eh[42:], phEntSize)
	le.PutUint16(eh[44:], 1) // e_phnum
	le.PutUint16(eh[46:], shEntSize)
	le.PutUint16(eh[48:], 5) // e_shnum
	le.PutUint16(eh[50:], 4) // e_shstrndx
	buf.Write(eh[:])

	// Program header.
	var ph [phEntSize]byte
	le.PutUint32(ph[0:], ptLoad)
	le.PutUint32(ph[4:], dataOff)              // p_offset
	le.PutUint32(ph[8:], f.Addr)               // p_vaddr
	le.PutUint32(ph[12:], f.Addr)              // p_paddr
	le.PutUint32(ph[16:], uint32(len(f.Data))) // p_filesz
	memsz := f.MemSize
	if memsz < uint32(len(f.Data)) {
		memsz = uint32(len(f.Data))
	}
	le.PutUint32(ph[20:], memsz) // p_memsz
	le.PutUint32(ph[24:], 7)     // rwx
	le.PutUint32(ph[28:], 4)     // align
	buf.Write(ph[:])

	buf.Write(f.Data)
	buf.Write(symtab.Bytes())
	buf.Write(strtab.Bytes())
	buf.Write(shstrtab)

	// Section headers.
	sh := func(nameOff, typ, flags, addr, off, size, link, info, align, entsize uint32) {
		var e [shEntSize]byte
		le.PutUint32(e[0:], nameOff)
		le.PutUint32(e[4:], typ)
		le.PutUint32(e[8:], flags)
		le.PutUint32(e[12:], addr)
		le.PutUint32(e[16:], off)
		le.PutUint32(e[20:], size)
		le.PutUint32(e[24:], link)
		le.PutUint32(e[28:], info)
		le.PutUint32(e[32:], align)
		le.PutUint32(e[36:], entsize)
		buf.Write(e[:])
	}
	sh(0, shtNull, 0, 0, 0, 0, 0, 0, 0, 0)
	sh(1, shtProgbit, 0x7, f.Addr, dataOff, uint32(len(f.Data)), 0, 0, 4, 0)     // .text
	sh(7, shtSymtab, 0, 0, symtabOff, uint32(symtab.Len()), 3, 1, 4, symEntSize) // .symtab
	sh(15, shtStrtab, 0, 0, strtabOff, uint32(strtab.Len()), 0, 0, 1, 0)         // .strtab
	sh(23, shtStrtab, 0, 0, shstrtabOff, uint32(len(shstrtab)), 0, 0, 1, 0)      // .shstrtab
	return buf.Bytes()
}

// Load parses an ELF produced by Write (or any ELF32 RISC-V executable
// with a single PT_LOAD segment and a symtab).
func Load(data []byte) (*File, error) {
	le := binary.LittleEndian
	if len(data) < ehSize || string(data[:4]) != elfMagic {
		return nil, fmt.Errorf("relf: not an ELF file")
	}
	if data[4] != 1 || data[5] != 1 {
		return nil, fmt.Errorf("relf: not a little-endian ELF32")
	}
	if m := le.Uint16(data[18:]); m != emRISCV {
		return nil, fmt.Errorf("relf: machine %d is not RISC-V", m)
	}
	f := &File{Entry: le.Uint32(data[24:]), Symbols: map[string]uint32{}}

	phoff := le.Uint32(data[28:])
	phnum := le.Uint16(data[44:])
	loads := 0
	for i := 0; i < int(phnum); i++ {
		p := data[phoff+uint32(i)*phEntSize:]
		if le.Uint32(p[0:]) != ptLoad {
			continue
		}
		loads++
		off := le.Uint32(p[4:])
		filesz := le.Uint32(p[16:])
		if uint64(off)+uint64(filesz) > uint64(len(data)) {
			return nil, fmt.Errorf("relf: segment out of bounds")
		}
		f.Addr = le.Uint32(p[8:])
		f.Data = append([]byte(nil), data[off:off+filesz]...)
		f.MemSize = le.Uint32(p[20:])
	}
	if loads != 1 {
		return nil, fmt.Errorf("relf: expected exactly 1 PT_LOAD segment, found %d", loads)
	}

	shoff := le.Uint32(data[32:])
	shnum := le.Uint16(data[48:])
	var symOff, symSize, strOff, strSize uint32
	for i := 0; i < int(shnum); i++ {
		s := data[shoff+uint32(i)*shEntSize:]
		typ := le.Uint32(s[4:])
		if typ == shtSymtab {
			symOff = le.Uint32(s[16:])
			symSize = le.Uint32(s[20:])
			link := le.Uint32(s[24:])
			ls := data[shoff+link*shEntSize:]
			strOff = le.Uint32(ls[16:])
			strSize = le.Uint32(ls[20:])
		}
	}
	if symOff != 0 {
		if uint64(symOff)+uint64(symSize) > uint64(len(data)) ||
			uint64(strOff)+uint64(strSize) > uint64(len(data)) {
			return nil, fmt.Errorf("relf: symtab out of bounds")
		}
		strs := data[strOff : strOff+strSize]
		for o := uint32(0); o+symEntSize <= symSize; o += symEntSize {
			e := data[symOff+o:]
			nameOff := le.Uint32(e[0:])
			if nameOff == 0 || nameOff >= strSize {
				continue
			}
			end := bytes.IndexByte(strs[nameOff:], 0)
			if end < 0 {
				continue
			}
			name := string(strs[nameOff : nameOff+uint32(end)])
			f.Symbols[name] = le.Uint32(e[4:])
		}
	}
	return f, nil
}
