package relf

import (
	"testing"
)

func TestRoundTrip(t *testing.T) {
	in := &File{
		Entry:   0x80000000,
		Addr:    0x80000000,
		Data:    []byte{0x13, 0, 0, 0, 0x73, 0, 0, 0},
		MemSize: 64,
		Symbols: map[string]uint32{
			"_start":            0x80000000,
			"sensor_transport":  0x80000004,
			"cte_transport_buf": 0x80000100,
		},
	}
	blob := Write(in)
	out, err := Load(blob)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if out.Entry != in.Entry || out.Addr != in.Addr || out.MemSize != in.MemSize {
		t.Errorf("header mismatch: %+v", out)
	}
	if string(out.Data) != string(in.Data) {
		t.Error("segment data mismatch")
	}
	for name, addr := range in.Symbols {
		got, ok := out.Symbol(name)
		if !ok || got != addr {
			t.Errorf("symbol %s: got %#x,%v want %#x", name, got, ok, addr)
		}
	}
	if _, ok := out.Symbol("missing"); ok {
		t.Error("missing symbol should not resolve")
	}
}

func TestRoundTripNoSymbols(t *testing.T) {
	in := &File{Entry: 0, Addr: 0x1000, Data: []byte{1, 2, 3}, MemSize: 3}
	out, err := Load(Write(in))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if len(out.Symbols) != 0 {
		t.Errorf("expected no symbols, got %v", out.Symbols)
	}
}

func TestLoadErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not an elf"),
		[]byte("\x7fELF and then garbage that is long enough to pass the size check.............."),
	}
	for i, blob := range cases {
		if _, err := Load(blob); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
	// Corrupt the machine type of a valid file.
	blob := Write(&File{Data: []byte{1}, MemSize: 1})
	blob[18] = 0x3e // EM_X86_64
	if _, err := Load(blob); err == nil {
		t.Error("wrong machine must fail")
	}
}

func TestBssViaMemSize(t *testing.T) {
	in := &File{Addr: 0x2000, Data: make([]byte, 16), MemSize: 4096}
	out, err := Load(Write(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.MemSize != 4096 || len(out.Data) != 16 {
		t.Errorf("memsz %d filesz %d", out.MemSize, len(out.Data))
	}
}
