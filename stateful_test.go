package rvcte

import (
	"context"
	"fmt"
	"testing"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// exploreSession explores the stateful session guest at the given
// packet depth with the full detector set and the protocol wiring of
// cmd/cte, either resuming cross-packet fork checkpoints or restarting
// from the snapshot on every path.
func exploreSession(tb testing.TB, depth, maxPaths int, fork bool) ([]string, *cte.Report) {
	tb.Helper()
	b := smt.NewBuilder()
	p := guest.TCPIPSessionProgram(0, nil, depth)
	core, elf, err := guest.NewCore(b, p)
	if err != nil {
		tb.Fatal(err)
	}
	addr, ok := elf.Symbol(p.Proto.StateSym)
	if !ok {
		tb.Fatalf("state symbol %q missing", p.Proto.StateSym)
	}
	eng := cte.NewSession(core, cte.Config{
		Workers:   1,
		Budget:    cte.Budget{MaxPaths: maxPaths},
		Detectors: []string{"all"},
		Fork:      cte.ForkConfig{Enabled: fork},
		Protocol: cte.ProtocolConfig{
			Packets: p.Proto.Pkts, PktMax: p.Proto.Caps,
			StateAddr: addr, States: p.Proto.States,
		},
	})
	var recs []string
	eng.OnPath = func(_ int, c *iss.Core) {
		recs = append(recs, fmt.Sprintf("in=%s exit=%d err=%v out=%q instr=%d",
			cte.DescribeInput(b, c.Input), c.ExitCode, c.Err, c.Output, c.InstrCount))
	}
	return recs, eng.Run(context.Background())
}

// TestSessionForkCrossPacket is the stateful-campaign half of the fork
// acceptance gate (EXPERIMENTS.md "Cross-packet fork checkpointing"):
// on a multi-packet session, divergences in packet k checkpoint the
// whole guest state — heap, detector state, protocol-state byte — so
// sibling paths resume without re-executing packets 1..k-1. Fork and
// restart must agree on the ordered path records while fork re-executes
// measurably fewer instructions, and the saving must grow with depth.
func TestSessionForkCrossPacket(t *testing.T) {
	prevRatio := 0.0
	for _, depth := range []int{2, 3} {
		t.Run(fmt.Sprintf("depth-%d", depth), func(t *testing.T) {
			forkRecs, forkRep := exploreSession(t, depth, 50, true)
			restRecs, restRep := exploreSession(t, depth, 50, false)

			if len(forkRecs) != len(restRecs) {
				t.Fatalf("path counts: fork %d restart %d", len(forkRecs), len(restRecs))
			}
			for i := range forkRecs {
				if forkRecs[i] != restRecs[i] {
					t.Fatalf("path %d diverges:\n fork:    %s\n restart: %s",
						i, forkRecs[i], restRecs[i])
				}
			}
			if forkRep.Forked == 0 {
				t.Error("fork mode never resumed a checkpoint")
			}
			if forkRep.TotalInstr >= restRep.TotalInstr {
				t.Errorf("no cross-packet re-execution saved: fork %d restart %d instrs",
					forkRep.TotalInstr, restRep.TotalInstr)
			}
			ratio := float64(restRep.TotalInstr) / float64(forkRep.TotalInstr)
			t.Logf("depth %d: %d paths, instr fork=%d restart=%d (%.2fx), forked=%d fallback=%d",
				depth, forkRep.Paths, forkRep.TotalInstr, restRep.TotalInstr,
				ratio, forkRep.Forked, forkRep.ForkRestarts)
			if ratio < prevRatio {
				t.Logf("note: saving did not grow from depth %d (%.2fx -> %.2fx)",
					depth-1, prevRatio, ratio)
			}
			prevRatio = ratio
		})
	}
}
