package rvcte

// Ablation benchmarks for the design choices called out in DESIGN.md:
// concolic vs concrete data types in the ISS (§4.1's ~2.2x), exploration
// restart-from-scratch vs clone-after-init (the freertos-sensor/s
// discussion), search strategies (§5 item 3), and the optional
// concretization trace conditions (§2.2).

import (
	"context"
	"testing"
	"time"

	"rvcte/internal/cte"
	"rvcte/internal/guest"
	"rvcte/internal/iss"
	"rvcte/internal/smt"
)

// BenchmarkAblationConcolicOverhead compares the concrete-native VP
// against the concolic ISS on the same all-concrete workload: the cost
// of carrying concolic data types (paper: ~2.2x).
func BenchmarkAblationConcolicOverhead(b *testing.B) {
	p, _ := guest.BenchProgram("dhrystone")
	p = withDefaults(p)
	b.Run("concrete-vp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnVP(b, p)
		}
	})
	b.Run("concolic-iss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			runOnCTE(b, p, false)
		}
	})
}

// snapshotAfterInit runs a fresh freertos-sensor VP until the RTOS
// scheduler has started (mrtos_started == 1) and returns it as the
// exploration snapshot — the paper's proposed fix for the re-
// initialization overhead observed on freertos-sensor/s.
func snapshotAfterInit(tb testing.TB) (*iss.Core, *smt.Builder) {
	tb.Helper()
	b := smt.NewBuilder()
	core, elf, err := guest.NewCore(b, guest.FreeRTOSSensorProgram(true, 2))
	if err != nil {
		tb.Fatal(err)
	}
	startedAddr, ok := elf.Symbol("mrtos_started")
	if !ok {
		tb.Fatal("mrtos_started symbol missing")
	}
	for i := 0; i < 2_000_000; i++ {
		if v := core.Mem.Load(startedAddr, 4); v.C == 1 {
			break
		}
		if core.Halted() {
			tb.Fatalf("halted during init: %v", core.Err)
		}
		core.Step()
	}
	if v := core.Mem.Load(startedAddr, 4); v.C != 1 {
		tb.Fatal("scheduler did not start within the budget")
	}
	if b.NumVars() != 0 && len(core.EPC) != 0 {
		tb.Fatal("snapshot point must precede symbolic branching")
	}
	return core, b
}

// TestAblationCloneAfterInit verifies the clone-after-init optimization
// preserves results and reports the re-initialization cost it avoids.
func TestAblationCloneAfterInit(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// From scratch.
	b1 := smt.NewBuilder()
	fresh, _, err := guest.NewCore(b1, guest.FreeRTOSSensorProgram(true, 2))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	freshRep := cte.NewSession(fresh, cte.Config{Budget: cte.Budget{MaxPaths: 40}}).Run(context.Background())
	freshTime := time.Since(start)

	// From the post-init snapshot.
	snap, _ := snapshotAfterInit(t)
	start = time.Now()
	snapRep := cte.NewSession(snap, cte.Config{Budget: cte.Budget{MaxPaths: 40}}).Run(context.Background())
	snapTime := time.Since(start)

	if len(freshRep.Findings) != len(snapRep.Findings) {
		t.Errorf("findings differ: fresh=%v snap=%v", freshRep.Findings, snapRep.Findings)
	}
	if freshRep.Paths != snapRep.Paths {
		t.Errorf("paths differ: fresh=%d snap=%d", freshRep.Paths, snapRep.Paths)
	}
	// The snapshot run re-executes strictly fewer instructions per path.
	if snapRep.TotalInstr >= freshRep.TotalInstr {
		t.Errorf("clone-after-init must save instructions: fresh=%d snap=%d",
			freshRep.TotalInstr, snapRep.TotalInstr)
	}
	t.Logf("from scratch: %v (%d instr); clone-after-init: %v (%d instr); speedup %.2fx",
		freshTime, freshRep.TotalInstr, snapTime, snapRep.TotalInstr,
		float64(freshTime)/float64(snapTime))
}

// BenchmarkAblationCloneAfterInit measures both exploration variants.
func BenchmarkAblationCloneAfterInit(b *testing.B) {
	b.Run("restart-from-scratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core, _, err := guest.NewCore(smt.NewBuilder(), guest.FreeRTOSSensorProgram(true, 2))
			if err != nil {
				b.Fatal(err)
			}
			cte.NewSession(core, cte.Config{Budget: cte.Budget{MaxPaths: 40}}).Run(context.Background())
		}
	})
	b.Run("clone-after-init", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			snap, _ := snapshotAfterInit(b)
			b.StartTimer()
			cte.NewSession(snap, cte.Config{Budget: cte.Budget{MaxPaths: 40}}).Run(context.Background())
		}
	})
}

// BenchmarkAblationSearchStrategy compares the search strategies on the
// counter workload (paper §5, future work item 3).
func BenchmarkAblationSearchStrategy(b *testing.B) {
	p, _ := guest.BenchProgram("counter-s")
	p = withDefaults(p)
	for _, s := range []cte.Strategy{cte.BFS, cte.DFS, cte.Random, cte.Coverage} {
		b.Run(s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core, _, err := guest.NewCore(smt.NewBuilder(), p)
				if err != nil {
					b.Fatal(err)
				}
				rep := cte.NewSession(core, cte.Config{Seed: 7, Budget: cte.Budget{MaxPaths: 1500}, Explore: cte.ExploreConfig{Strategy: s}}).Run(context.Background())
				if !rep.Exhausted {
					b.Fatalf("%s did not exhaust", s)
				}
			}
		})
	}
}

// TestAblationSearchStrategyBugTime compares how quickly each strategy
// reaches the first TCP/IP bug.
func TestAblationSearchStrategyBugTime(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, s := range []cte.Strategy{cte.BFS, cte.DFS, cte.Random, cte.Coverage} {
		core, _, err := guest.NewCore(smt.NewBuilder(), guest.TCPIPProgram(0, 64))
		if err != nil {
			t.Fatal(err)
		}
		rep := cte.NewSession(core, cte.Config{Seed: 11, StopOnError: true, Budget: cte.Budget{MaxPaths: 2000}, Explore: cte.ExploreConfig{Strategy: s}}).Run(context.Background())
		if len(rep.Findings) == 0 {
			t.Errorf("%s: bug 1 not found in %d paths", s, rep.Paths)
			continue
		}
		t.Logf("%-9s first bug after %4d paths, %5d queries, %.2fs",
			s, rep.Paths, rep.Queries, rep.WallTime.Seconds())
	}
}

// TestAblationConcretizationTCs shows the §2.2 optional concretization
// trace conditions are load-bearing: without them, the DNS reply
// overflow (bug 3) is unreachable because allocation sizes stay pinned
// to their first concrete value.
func TestAblationConcretizationTCs(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	// Bugs 1, 2, 4, 5, 6 fixed; only bug 3 remains.
	const fixed = 0b111011

	run := func(disable bool) *cte.Report {
		core, _, err := guest.NewCore(smt.NewBuilder(), guest.TCPIPProgram(fixed, 64))
		if err != nil {
			t.Fatal(err)
		}
		core.NoConcretizationTCs = disable
		return cte.NewSession(core, cte.Config{StopOnError: true, Budget: cte.Budget{MaxPaths: 3000}}).Run(context.Background())
	}

	with := run(false)
	if len(with.Findings) == 0 {
		t.Errorf("with concretization TCs, bug 3 must be found (explored %d paths)", with.Paths)
	}
	without := run(true)
	if len(without.Findings) != 0 {
		t.Logf("note: bug 3 found even without concretization TCs (%d paths)", without.Paths)
	} else {
		t.Logf("without concretization TCs: not found (%d paths, exhausted=%v); with: found after %d paths",
			without.Paths, without.Exhausted, with.Paths)
	}
}
